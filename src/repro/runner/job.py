"""Sweep-job specifications: hashable, serializable units of work.

A :class:`SweepJob` names everything needed to reproduce a threshold
sweep from scratch in any process: the zoo network (name, scale, seed),
the memoization-scheme knobs, the evaluation split, and the theta grid.
Every individual ``(job, theta)`` point canonicalises to a JSON payload
whose sha256 digest keys one :class:`~repro.runner.cache.ResultCache`
entry, and the payload itself is what travels to worker processes.
:class:`EvalShardJob` is the per-batch refinement: one ``(job, theta)``
point restricted to the ``i``-th of ``n`` deterministic shards of the
evaluation split.  Both payload kinds carry a ``kind`` discriminator so
a shard partial and a whole-point result with otherwise identical
parameters can never collide on a cache key.

Because benchmark training is fully seeded (numpy only), a point payload
is a *pure* description: any process that evaluates it produces bitwise
identical results, which is what makes content-addressed caching and
process-parallel fan-out safe.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.engine import PREDICTOR_KINDS, MemoizationScheme
from repro.core.stats import ReuseStats
from repro.metrics.accumulators import accumulator_from_payload
from repro.models.benchmark import Benchmark, MemoizedResult
from repro.models.specs import BENCHMARK_NAMES

#: Default threshold grid; matches the x-axes of Figures 1 and 16.
DEFAULT_THETAS: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)

#: Bump whenever evaluation semantics change (training recipe, engine
#: behaviour, result schema) so stale cache entries are never reused
#: across incompatible code versions.
#:
#: v2: payloads grew a ``kind`` discriminator (sweep points vs eval
#: shards), results optionally carry metric-accumulator state, and the
#: MNMT evaluation decodes a batch-independent number of steps (shard
#: determinism) — all invalidating v1 entries.
CACHE_VERSION = 2


@dataclass(frozen=True)
class SweepJob:
    """One network/predictor threshold sweep, as a self-contained spec.

    Attributes:
        network: zoo benchmark name (a :data:`BENCHMARK_NAMES` member).
        thetas: the threshold grid to explore.
        predictor: one of :data:`~repro.core.engine.PREDICTOR_KINDS`.
        scale: zoo scale (``"tiny"`` or ``"bench"``).
        seed: benchmark construction/training seed.
        throttle: accumulate relative differences across reuses (Eq. 13).
        use_packed: evaluate BNNs with the bit-packed XNOR path.
        calibration: evaluate on the calibration split (§3.2.1) instead
            of the test split.
        layer_thetas: optional per-layer threshold overrides as sorted
            ``(layer, theta)`` pairs (kept as a tuple for hashability).
    """

    network: str
    thetas: Tuple[float, ...] = DEFAULT_THETAS
    predictor: str = "bnn"
    scale: str = "tiny"
    seed: int = 0
    throttle: bool = True
    use_packed: bool = False
    calibration: bool = False
    layer_thetas: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self):
        if self.network not in BENCHMARK_NAMES:
            raise ValueError(
                f"network must be one of {tuple(BENCHMARK_NAMES)}, got "
                f"{self.network!r}"
            )
        if self.predictor not in PREDICTOR_KINDS:
            raise ValueError(
                f"predictor must be one of {PREDICTOR_KINDS}, got "
                f"{self.predictor!r}"
            )
        thetas = tuple(float(theta) for theta in self.thetas)
        if not thetas:
            raise ValueError("thetas must be non-empty")
        # math.isfinite rejects NaN too, which `< 0` would wave through
        # (every comparison against NaN is False) — and these thetas
        # arrive over the wire via job_from_payload, where json.loads
        # happily produces NaN/Infinity.
        if any(not math.isfinite(theta) or theta < 0 for theta in thetas):
            raise ValueError("thresholds must be finite and non-negative")
        object.__setattr__(self, "thetas", thetas)
        if self.layer_thetas is not None:
            pairs = tuple(
                sorted((str(name), float(theta)) for name, theta in self.layer_thetas)
            )
            if any(not math.isfinite(theta) or theta < 0 for _, theta in pairs):
                raise ValueError("layer thresholds must be finite and non-negative")
            object.__setattr__(self, "layer_thetas", pairs)

    @classmethod
    def from_benchmark(
        cls,
        benchmark: Benchmark,
        scheme: MemoizationScheme,
        thetas: Sequence[float],
        calibration: bool = False,
    ) -> "SweepJob":
        """Job spec for a live benchmark instance under ``scheme``."""
        layer_thetas = None
        if scheme.layer_thetas is not None:
            layer_thetas = tuple(sorted(scheme.layer_thetas.items()))
        return cls(
            network=benchmark.name,
            thetas=tuple(thetas),
            predictor=scheme.predictor,
            scale=benchmark.scale,
            seed=benchmark.seed,
            throttle=scheme.throttle,
            use_packed=scheme.use_packed,
            calibration=calibration,
            layer_thetas=layer_thetas,
        )

    @classmethod
    def from_point_payload(cls, payload: Mapping[str, object]) -> "SweepJob":
        """Rebuild the single-theta job a ``sweep_point`` payload describes.

        Inverse of :meth:`point_payload`:
        ``SweepJob.from_point_payload(p).point_payload(p["theta"]) == p``.
        Most callers want :func:`job_from_payload`, which dispatches on
        ``kind`` and validates the payload's cache version first.
        """
        layer_thetas = payload.get("layer_thetas")
        return cls(
            network=str(payload["network"]),
            # checks: allow-nonfinite SweepJob.__post_init__ rejects non-finite thetas
            thetas=(float(payload["theta"]),),
            predictor=str(payload["predictor"]),
            scale=str(payload["scale"]),
            seed=int(payload["seed"]),
            throttle=bool(payload["throttle"]),
            use_packed=bool(payload["use_packed"]),
            calibration=bool(payload["calibration"]),
            layer_thetas=(
                tuple((str(name), float(theta)) for name, theta in layer_thetas)
                if layer_thetas is not None
                else None
            ),
        )

    def for_theta(self, theta: float) -> "SweepJob":
        """Copy of the job restricted to a single threshold."""
        return replace(self, thetas=(float(theta),))

    def scheme(self, theta: float) -> MemoizationScheme:
        """The memoization scheme for one point of this job."""
        layer_thetas = (
            dict(self.layer_thetas) if self.layer_thetas is not None else None
        )
        return MemoizationScheme(
            theta=float(theta),
            predictor=self.predictor,
            throttle=self.throttle,
            use_packed=self.use_packed,
            layer_thetas=layer_thetas,
        )

    # -- canonical forms ----------------------------------------------------

    def point_payload(self, theta: float) -> Dict[str, object]:
        """JSON-safe canonical description of one sweep point."""
        return {
            "kind": "sweep_point",
            "cache_version": CACHE_VERSION,
            "network": self.network,
            "scale": self.scale,
            "seed": self.seed,
            "predictor": self.predictor,
            "throttle": self.throttle,
            "use_packed": self.use_packed,
            "calibration": self.calibration,
            "layer_thetas": (
                [list(pair) for pair in self.layer_thetas]
                if self.layer_thetas is not None
                else None
            ),
            "theta": float(theta),
        }

    def point_key(self, theta: float) -> str:
        """Content-address of one sweep point (cache key)."""
        return _digest(self.point_payload(theta))

    def spec_hash(self) -> str:
        """Content-address of the whole job (all thetas)."""
        payload = self.point_payload(self.thetas[0])
        del payload["theta"]
        payload["thetas"] = list(self.thetas)
        return _digest(payload)


@dataclass(frozen=True)
class EvalShardJob:
    """One sweep point restricted to one shard of the evaluation split.

    ``(theta, shard_index, shard_count)`` refines a :class:`SweepJob`
    point into a per-batch unit of work: the benchmark partitions its
    split with :func:`repro.models.benchmark.shard_indices` and
    evaluates only the ``shard_index``-th part.  Shard payloads are
    keyed separately from whole-point payloads (``kind`` field), so
    partial and merged results never alias in the cache.
    """

    network: str
    theta: float
    shard_index: int
    shard_count: int
    predictor: str = "bnn"
    scale: str = "tiny"
    seed: int = 0
    throttle: bool = True
    use_packed: bool = False
    calibration: bool = False
    layer_thetas: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self):
        if self.shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), got "
                f"{self.shard_index}"
            )
        # Delegate network/predictor/theta/layer_thetas validation (and
        # canonicalisation) to SweepJob — one rule set for both specs.
        point = self._sweep_point()
        object.__setattr__(self, "theta", point.thetas[0])
        object.__setattr__(self, "layer_thetas", point.layer_thetas)

    def _sweep_point(self) -> SweepJob:
        """The single-theta SweepJob this shard refines."""
        return SweepJob(
            network=self.network,
            thetas=(self.theta,),
            predictor=self.predictor,
            scale=self.scale,
            seed=self.seed,
            throttle=self.throttle,
            use_packed=self.use_packed,
            calibration=self.calibration,
            layer_thetas=self.layer_thetas,
        )

    @classmethod
    def from_sweep_point(
        cls, job: SweepJob, theta: float, shard_index: int, shard_count: int
    ) -> "EvalShardJob":
        """The ``shard_index``-th of ``shard_count`` shards of one point."""
        return cls(
            network=job.network,
            theta=float(theta),
            shard_index=shard_index,
            shard_count=shard_count,
            predictor=job.predictor,
            scale=job.scale,
            seed=job.seed,
            throttle=job.throttle,
            use_packed=job.use_packed,
            calibration=job.calibration,
            layer_thetas=job.layer_thetas,
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "EvalShardJob":
        """Rebuild the shard job an ``eval_shard`` payload describes.

        Inverse of :meth:`payload`:
        ``EvalShardJob.from_payload(p).payload() == p``.  Most callers
        want :func:`job_from_payload`, which dispatches on ``kind`` and
        validates the payload's cache version first.
        """
        point = SweepJob.from_point_payload(payload)
        return cls.from_sweep_point(
            point,
            point.thetas[0],
            int(payload["shard_index"]),
            int(payload["shard_count"]),
        )

    @property
    def shard(self) -> Tuple[int, int]:
        return (self.shard_index, self.shard_count)

    def payload(self) -> Dict[str, object]:
        """JSON-safe canonical description of this shard evaluation.

        Derived from :meth:`SweepJob.point_payload` so a new scheme knob
        is automatically part of shard cache keys too; only the ``kind``
        and the shard coordinates differ.
        """
        payload = self._sweep_point().point_payload(self.theta)
        payload["kind"] = "eval_shard"
        payload["shard_index"] = self.shard_index
        payload["shard_count"] = self.shard_count
        return payload

    def key(self) -> str:
        """Content-address of this shard evaluation (cache key)."""
        return _digest(self.payload())


def _digest(payload: Mapping[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def payload_key(payload: Mapping[str, object]) -> str:
    """Content-address of any job payload: its cache key and queue task id.

    Matches :meth:`SweepJob.point_key` / :meth:`EvalShardJob.key` for
    the payloads those jobs emit, so a worker that only ever sees the
    payload still stores its result under the exact key the submitting
    runner polls for.
    """
    return _digest(payload)


#: ``kind`` discriminator values understood by :func:`job_from_payload`.
JOB_KINDS = ("sweep_point", "eval_shard")


def job_from_payload(
    payload: Mapping[str, object],
) -> "Union[SweepJob, EvalShardJob]":
    """Rebuild the job spec a payload describes, dispatching on ``kind``.

    The inverse of :meth:`SweepJob.point_payload` /
    :meth:`EvalShardJob.payload`: ``sweep_point`` payloads yield a
    single-theta :class:`SweepJob`, ``eval_shard`` payloads an
    :class:`EvalShardJob`, and round-tripping back through the job's
    payload method reproduces the input exactly.

    Raises:
        ValueError: on an unknown ``kind`` or a payload written by a
            different :data:`CACHE_VERSION` (a worker must never
            evaluate a spec from an incompatible code version — the
            result would be stored under a key that lies about its
            semantics).
    """
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    version = payload.get("cache_version")
    if version != CACHE_VERSION:
        raise ValueError(
            f"payload cache_version {version!r} does not match this "
            f"code's CACHE_VERSION {CACHE_VERSION}"
        )
    if kind == "sweep_point":
        return SweepJob.from_point_payload(payload)
    return EvalShardJob.from_payload(payload)


def scheme_from_payload(payload: Mapping[str, object]) -> MemoizationScheme:
    """Rebuild the memoization scheme named by a point payload."""
    layer_thetas = payload.get("layer_thetas")
    return MemoizationScheme(
        # checks: allow-nonfinite MemoizationScheme.__post_init__ rejects non-finite thetas
        theta=float(payload["theta"]),
        predictor=str(payload["predictor"]),
        throttle=bool(payload["throttle"]),
        use_packed=bool(payload["use_packed"]),
        layer_thetas=(
            {str(name): float(theta) for name, theta in layer_thetas}
            if layer_thetas is not None
            else None
        ),
    )


# -- result (de)serialization ----------------------------------------------


def result_to_payload(result: MemoizedResult) -> Dict[str, object]:
    """JSON-safe form of a :class:`MemoizedResult` (lossless for floats).

    Shard partials additionally serialize their metric-accumulator state
    and ``base_quality`` so the reduce step can merge cached partials
    without rebuilding (or training) the benchmark.
    """
    payload: Dict[str, object] = {
        "quality": float(result.quality),
        "quality_loss": float(result.quality_loss),
        "reuse_fraction": float(result.reuse_fraction),
        "stats": {
            "reused": [
                [layer, gate, int(count)]
                for (layer, gate), count in sorted(result.stats.reused.items())
            ],
            "total": [
                [layer, gate, int(count)]
                for (layer, gate), count in sorted(result.stats.total.items())
            ],
        },
    }
    if result.metric is not None:
        payload["metric"] = result.metric.to_payload()
    if result.base_quality is not None:
        payload["base_quality"] = float(result.base_quality)
    return payload


def result_from_payload(payload: Mapping[str, object]) -> MemoizedResult:
    """Inverse of :func:`result_to_payload`.

    Raises:
        KeyError, TypeError, ValueError: on malformed payloads — callers
            treat these as cache misses.
    """
    stats = ReuseStats()
    raw = payload["stats"]
    for layer, gate, count in raw["reused"]:
        stats.reused[(str(layer), str(gate))] = int(count)
    for layer, gate, count in raw["total"]:
        stats.total[(str(layer), str(gate))] = int(count)
    metric_payload = payload.get("metric")
    base_quality = payload.get("base_quality")
    return MemoizedResult(
        # checks: allow-nonfinite result metrics are round-tripped verbatim, not threshold inputs
        quality=float(payload["quality"]),
        # checks: allow-nonfinite result metrics are round-tripped verbatim, not threshold inputs
        quality_loss=float(payload["quality_loss"]),
        # checks: allow-nonfinite result metrics are round-tripped verbatim, not threshold inputs
        reuse_fraction=float(payload["reuse_fraction"]),
        stats=stats,
        metric=(
            accumulator_from_payload(metric_payload)
            if metric_payload is not None
            else None
        ),
        base_quality=(
            float(base_quality) if base_quality is not None else None
        ),
    )
