"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the sha256 of a
sweep point's canonical payload (see :meth:`SweepJob.point_key`).  The
two-character fan-out keeps directories small on large sweeps.  Writes
are atomic (tempfile + ``os.replace``) so a crashed or concurrent run
never leaves a half-written entry; unreadable or corrupted entries are
discarded and treated as misses.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Dict, Optional, Union

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


class ResultCache:
    """JSON result store keyed by content hash."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Stored payload for ``key``, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        if not isinstance(payload, dict):
            self._discard(path)
            return None
        return payload

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Atomically persist ``payload`` under ``key``.

        The temp name carries a uuid, not just the pid: the multi-host
        work queue shares one cache across machines, where pids collide
        (two containerised workers are both pid 1) and a pid-only temp
        file could be written by two processes at once.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def discard(self, key: str) -> None:
        """Forget ``key`` if present (used by fresh-run queue submits)."""
        self._discard(self.path_for(key))

    def discard_many(self, keys) -> None:
        """Forget every key in ``keys``.

        A loop here; the remote result store overrides this with one
        batched round trip, which is why the fresh-run submitter calls
        it instead of looping over :meth:`discard` itself.
        """
        for key in keys:
            self.discard(key)

    def __contains__(self, key: str) -> bool:
        """Membership agrees with :meth:`get`: a corrupt or non-dict
        entry that ``get`` would discard and report as a miss is not
        *in* the cache (and is discarded here too), so ``key in cache``
        can never promise a payload that ``get(key)`` then fails to
        deliver."""
        return self.get(key) is not None

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.root.glob("*/*.json")):
            self._discard(path)
            removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
