"""Parallel sweep execution: fan independent points across processes.

The paper's methodology is embarrassingly parallel — every (network,
predictor, theta) evaluation is independent — so :class:`ParallelRunner`
treats a :class:`~repro.runner.job.SweepJob` as a work-queue of point
payloads, resolves as many as possible from the
:class:`~repro.runner.cache.ResultCache`, and fans the remainder out
over a ``ProcessPoolExecutor``.  Workers rebuild benchmarks from the
payload alone (deterministic zoo seeding), so parallel results are
bitwise identical to the serial in-process path.

With ``shards > 1`` a single evaluation is additionally split *within*
the test/calibration batch: each point fans out into
:class:`~repro.runner.job.EvalShardJob` units (one per split partition),
partials are cached under shard-specific keys, and a reduce step merges
them (:func:`repro.models.benchmark.merge_shard_results`) into the
bitwise-identical whole-point result — the merged result is also stored
under the whole-point key, so sharded and unsharded runs share the
cache.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.calibration import ThresholdSweep
from repro.models.benchmark import Benchmark, MemoizedResult, merge_shard_results
from repro.models.specs import PAPER_NETWORKS
from repro.models.zoo import load_benchmark
from repro.runner.cache import ResultCache
from repro.runner.job import (
    EvalShardJob,
    SweepJob,
    result_from_payload,
    result_to_payload,
    scheme_from_payload,
)


def _evaluate_payload(
    payload: Mapping[str, object], benchmark: Optional[Benchmark] = None
) -> MemoizedResult:
    """Evaluate any point or shard payload, optionally on a live benchmark.

    The payload's ``shard_index``/``shard_count`` keys (present only on
    ``eval_shard`` payloads) select the shard; whole points evaluate the
    full split.  This is the single evaluation path shared by worker
    processes and the serial in-process fallback, so cached, parallel,
    sharded and serial results can never drift apart.
    """
    if benchmark is None:
        benchmark = load_benchmark(
            str(payload["network"]),
            scale=str(payload["scale"]),
            seed=int(payload["seed"]),
            trained=False,
        )
    shard = None
    if "shard_index" in payload:
        shard = (int(payload["shard_index"]), int(payload["shard_count"]))
    return benchmark.evaluate_memoized(
        scheme_from_payload(payload),
        calibration=bool(payload["calibration"]),
        shard=shard,
    )


def evaluate_point(payload: Mapping[str, object]) -> Dict[str, object]:
    """Worker entry point: evaluate one point or shard from its payload.

    A pure function of the payload — the zoo rebuilds and (lazily)
    trains the benchmark from ``(network, scale, seed)`` with fully
    seeded numpy, so any process computes the same result.  Returns the
    JSON-safe result payload (what the cache stores); shard payloads
    (``shard_index``/``shard_count`` present) yield partials carrying
    their metric-accumulator state and ``base_quality``.
    """
    return result_to_payload(_evaluate_payload(payload))


#: Alias for readability at sharded call sites: the payload's own
#: ``shard_index``/``shard_count`` fields select the shard, so point
#: and shard evaluations share one dispatch path.
evaluate_shard = evaluate_point


@dataclass(frozen=True)
class RunReport:
    """Accounting for one :meth:`ParallelRunner.run` call."""

    hits: int = 0
    misses: int = 0
    workers: int = 1

    @property
    def evaluated(self) -> int:
        """Points actually (re-)evaluated — zero on a warm cache."""
        return self.misses


class ParallelRunner:
    """Executes sweep jobs point-by-point, with caching and fan-out.

    The worker pool is created lazily on the first parallel run and
    kept alive for the runner's lifetime: each worker's in-process zoo
    cache then amortises benchmark training across successive ``run``
    calls (a pool-per-call design would retrain the same networks for
    every sweep).  Call :meth:`close` (or use the runner as a context
    manager) to release the workers.

    Args:
        jobs: worker processes; ``1`` evaluates serially in-process
            (no pool), which is also the fallback when only a single
            point misses the cache.
        cache: optional :class:`ResultCache`; ``None`` disables caching.

    Attributes:
        last_report: :class:`RunReport` for the most recent ``run``.
        hits / misses: cumulative counters across the runner's lifetime.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.cache = cache
        self.last_report = RunReport()
        self.hits = 0
        self.misses = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        job: SweepJob,
        benchmark: Optional[Benchmark] = None,
        shards: int = 1,
    ) -> List[MemoizedResult]:
        """Evaluate every theta of ``job``; results in theta order.

        Args:
            job: the sweep spec.
            benchmark: optional live instance to evaluate on when
                running serially (saves a zoo rebuild); it must match
                the job's identity.  Ignored by the process pool, whose
                workers always rebuild from the spec.
            shards: split each point's evaluation batch into this many
                :class:`EvalShardJob` units (``1`` keeps the whole-point
                path).  Results are bitwise identical for any value.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if benchmark is not None:
            self._check_benchmark(job, benchmark)
        if shards > 1:
            return self._run_sharded(job, shards, benchmark)
        payloads = [job.point_payload(theta) for theta in job.thetas]
        keys = [job.point_key(theta) for theta in job.thetas]
        results: List[Optional[MemoizedResult]] = [None] * len(keys)

        missing: List[int] = []
        for i, key in enumerate(keys):
            if self.cache is not None:
                results[i] = self._cached_result(key)
            if results[i] is None:
                missing.append(i)

        workers = 1
        if missing:
            if self.jobs > 1 and len(missing) > 1:
                workers = min(self.jobs, len(missing))
                outputs = list(
                    self._get_pool().map(
                        evaluate_point, [payloads[i] for i in missing]
                    )
                )
                for i, output in zip(missing, outputs):
                    results[i] = result_from_payload(output)
                    if self.cache is not None:
                        self.cache.put(keys[i], output)
            else:
                for i in missing:
                    results[i] = _evaluate_payload(payloads[i], benchmark)
                    if self.cache is not None:
                        self.cache.put(keys[i], result_to_payload(results[i]))

        hits = len(keys) - len(missing)
        self.last_report = RunReport(
            hits=hits, misses=len(missing), workers=workers
        )
        self.hits += hits
        self.misses += len(missing)
        return [result for result in results if result is not None]

    def sweep(
        self,
        job: SweepJob,
        benchmark: Optional[Benchmark] = None,
        shards: int = 1,
    ) -> ThresholdSweep:
        """Run ``job`` and fold the points into a :class:`ThresholdSweep`."""
        sweep = ThresholdSweep()
        results = self.run(job, benchmark=benchmark, shards=shards)
        for theta, result in zip(job.thetas, results):
            sweep.add(theta, result.quality_loss, result.reuse_fraction)
        return sweep

    # -- internals ----------------------------------------------------------

    def _run_sharded(
        self, job: SweepJob, shards: int, benchmark: Optional[Benchmark]
    ) -> List[MemoizedResult]:
        """Fan each point out per-batch and reduce the shard partials.

        Cache protocol: a point resolved from its *whole-point* key is a
        single hit; otherwise each shard resolves or evaluates under its
        own key (counted individually in the report) and the merged
        result is written back under the whole-point key, making the
        sharded and unsharded cache populations interchangeable.
        """
        results: List[Optional[MemoizedResult]] = [None] * len(job.thetas)
        shard_slots: Dict[int, List[Optional[MemoizedResult]]] = {}
        pending: List[Tuple[int, int, EvalShardJob]] = []
        hits = 0

        for t, theta in enumerate(job.thetas):
            if self.cache is not None:
                results[t] = self._cached_result(job.point_key(theta))
                if results[t] is not None:
                    hits += 1
                    continue
            slots: List[Optional[MemoizedResult]] = [None] * shards
            for s in range(shards):
                shard_job = EvalShardJob.from_sweep_point(job, theta, s, shards)
                if self.cache is not None:
                    partial = self._cached_result(shard_job.key())
                    # A usable partial must carry the shard-only fields.
                    if partial is not None and (
                        partial.metric is None or partial.base_quality is None
                    ):
                        partial = None
                    slots[s] = partial
                if slots[s] is None:
                    pending.append((t, s, shard_job))
                else:
                    hits += 1
            shard_slots[t] = slots

        workers = 1
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                payloads = [shard_job.payload() for _, _, shard_job in pending]
                outputs = list(self._get_pool().map(evaluate_point, payloads))
                for (t, s, shard_job), output in zip(pending, outputs):
                    shard_slots[t][s] = result_from_payload(output)
                    if self.cache is not None:
                        self.cache.put(shard_job.key(), output)
            else:
                for t, s, shard_job in pending:
                    partial = _evaluate_payload(shard_job.payload(), benchmark)
                    shard_slots[t][s] = partial
                    if self.cache is not None:
                        self.cache.put(
                            shard_job.key(), result_to_payload(partial)
                        )

        higher_is_better = PAPER_NETWORKS[job.network].higher_is_better
        for t, slots in shard_slots.items():
            merged = merge_shard_results(slots, higher_is_better)
            results[t] = merged
            if self.cache is not None:
                self.cache.put(
                    job.point_key(job.thetas[t]), result_to_payload(merged)
                )

        self.last_report = RunReport(
            hits=hits, misses=len(pending), workers=workers
        )
        self.hits += hits
        self.misses += len(pending)
        return [result for result in results if result is not None]

    def _cached_result(self, key: str) -> Optional[MemoizedResult]:
        """Cache lookup that treats stale/corrupt payloads as misses."""
        cached = self.cache.get(key)
        if cached is None:
            return None
        try:
            return result_from_payload(cached)
        except (KeyError, TypeError, ValueError):
            return None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    @staticmethod
    def _check_benchmark(job: SweepJob, benchmark: Benchmark) -> None:
        identity = (benchmark.name, benchmark.scale, benchmark.seed)
        expected = (job.network, job.scale, job.seed)
        if identity != expected:
            raise ValueError(
                f"benchmark identity {identity} does not match job "
                f"spec {expected}; cached results would be mislabelled"
            )
