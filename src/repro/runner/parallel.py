"""Sweep execution: cache resolution + pluggable backend fan-out.

The paper's methodology is embarrassingly parallel — every (network,
predictor, theta) evaluation is independent — so :class:`ParallelRunner`
treats a :class:`~repro.runner.job.SweepJob` as a work-queue of point
payloads, resolves as many as possible from the
:class:`~repro.runner.cache.ResultCache`, and hands the misses to an
:class:`~repro.runner.backends.ExecutionBackend`: serial in-process,
a local process pool, or the file-based multi-host work queue.  All
backends evaluate through the same
:func:`~repro.runner.evaluate.evaluate_point` path, so their results
are bitwise identical to the serial baseline.

With ``shards > 1`` a single evaluation is additionally split *within*
the test/calibration batch: each point fans out into
:class:`~repro.runner.job.EvalShardJob` units (one per split partition),
partials are cached under shard-specific keys, and a reduce step merges
them (:func:`repro.models.benchmark.merge_shard_results`) into the
bitwise-identical whole-point result — the merged result is also stored
under the whole-point key, so sharded and unsharded runs share the
cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.calibration import ThresholdSweep
from repro.models.benchmark import Benchmark, MemoizedResult, merge_shard_results
from repro.models.specs import PAPER_NETWORKS
from repro.runner.backends import ExecutionBackend, ProcessBackend, SerialBackend
from repro.runner.evaluate import evaluate_payload, evaluate_point, evaluate_shard
from repro.runner.job import (
    EvalShardJob,
    SweepJob,
    result_from_payload,
    result_to_payload,
)

__all__ = [
    "ParallelRunner",
    "RunReport",
    "evaluate_payload",
    "evaluate_point",
    "evaluate_shard",
]


@dataclass(frozen=True)
class RunReport:
    """Accounting for one :meth:`ParallelRunner.run` call."""

    hits: int = 0
    misses: int = 0
    workers: int = 1
    backend: str = "serial"

    @property
    def evaluated(self) -> int:
        """Points actually (re-)evaluated — zero on a warm cache."""
        return self.misses


class ParallelRunner:
    """Executes sweep jobs point-by-point, with caching and fan-out.

    The execution strategy is a pluggable
    :class:`~repro.runner.backends.ExecutionBackend`.  By default the
    runner builds its own: :class:`SerialBackend` for ``jobs=1``,
    :class:`ProcessBackend` otherwise (the historical behaviour); pass
    ``backend=`` to supply any other strategy, e.g. a
    :class:`~repro.runner.backends.QueueBackend` that ships payloads to
    worker processes on other hosts.  The runner owns whatever backend
    it ends up with: :meth:`close` (or exiting the context manager)
    releases its resources.

    Args:
        jobs: worker processes for the default process backend; ``1``
            selects the serial backend.  Ignored when ``backend`` is
            given.
        cache: optional :class:`ResultCache`; ``None`` disables caching.
        backend: optional explicit execution backend.

    Attributes:
        last_report: :class:`RunReport` for the most recent ``run``.
        hits / misses: cumulative counters across the runner's lifetime.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        backend: Optional[ExecutionBackend] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if backend is None:
            backend = ProcessBackend(jobs) if jobs > 1 else SerialBackend()
        self.backend = backend
        self.jobs = getattr(backend, "jobs", int(jobs))
        self.cache = cache
        self.last_report = RunReport(backend=backend.name)
        self.hits = 0
        self.misses = 0

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        job: SweepJob,
        benchmark: Optional[Benchmark] = None,
        shards: int = 1,
    ) -> List[MemoizedResult]:
        """Evaluate every theta of ``job``; results in theta order.

        Args:
            job: the sweep spec.
            benchmark: optional live instance to evaluate on when
                running in-process (saves a zoo rebuild); it must match
                the job's identity.  Distributed backends ignore it —
                their workers always rebuild from the spec.
            shards: split each point's evaluation batch into this many
                :class:`EvalShardJob` units (``1`` keeps the whole-point
                path).  Results are bitwise identical for any value.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if benchmark is not None:
            self._check_benchmark(job, benchmark)
        if shards > 1:
            return self._run_sharded(job, shards, benchmark)
        payloads = [job.point_payload(theta) for theta in job.thetas]
        keys = [job.point_key(theta) for theta in job.thetas]
        results: List[Optional[MemoizedResult]] = [None] * len(keys)

        missing: List[int] = []
        for i, key in enumerate(keys):
            if self.cache is not None:
                results[i] = self._cached_result(key)
            if results[i] is None:
                missing.append(i)

        if missing:
            outputs = self.backend.execute(
                [payloads[i] for i in missing], benchmark=benchmark
            )
            for i, output in zip(missing, outputs):
                results[i] = result_from_payload(output)
                if self.cache is not None:
                    self.cache.put(keys[i], output)

        self._account(hits=len(keys) - len(missing), misses=len(missing))
        return [result for result in results if result is not None]

    def sweep(
        self,
        job: SweepJob,
        benchmark: Optional[Benchmark] = None,
        shards: int = 1,
    ) -> ThresholdSweep:
        """Run ``job`` and fold the points into a :class:`ThresholdSweep`."""
        sweep = ThresholdSweep()
        results = self.run(job, benchmark=benchmark, shards=shards)
        for theta, result in zip(job.thetas, results):
            sweep.add(theta, result.quality_loss, result.reuse_fraction)
        return sweep

    # -- internals ----------------------------------------------------------

    def _run_sharded(
        self, job: SweepJob, shards: int, benchmark: Optional[Benchmark]
    ) -> List[MemoizedResult]:
        """Fan each point out per-batch and reduce the shard partials.

        Cache protocol: a point resolved from its *whole-point* key is a
        single hit; otherwise each shard resolves or evaluates under its
        own key (counted individually in the report) and the merged
        result is written back under the whole-point key, making the
        sharded and unsharded cache populations interchangeable.
        """
        results: List[Optional[MemoizedResult]] = [None] * len(job.thetas)
        shard_slots: Dict[int, List[Optional[MemoizedResult]]] = {}
        pending: List[Tuple[int, int, EvalShardJob]] = []
        hits = 0

        for t, theta in enumerate(job.thetas):
            if self.cache is not None:
                results[t] = self._cached_result(job.point_key(theta))
                if results[t] is not None:
                    hits += 1
                    continue
            slots: List[Optional[MemoizedResult]] = [None] * shards
            for s in range(shards):
                shard_job = EvalShardJob.from_sweep_point(job, theta, s, shards)
                if self.cache is not None:
                    partial = self._cached_result(shard_job.key())
                    # A usable partial must carry the shard-only fields.
                    if partial is not None and (
                        partial.metric is None or partial.base_quality is None
                    ):
                        partial = None
                    slots[s] = partial
                if slots[s] is None:
                    pending.append((t, s, shard_job))
                else:
                    hits += 1
            shard_slots[t] = slots

        if pending:
            outputs = self.backend.execute(
                [shard_job.payload() for _, _, shard_job in pending],
                benchmark=benchmark,
            )
            for (t, s, shard_job), output in zip(pending, outputs):
                shard_slots[t][s] = result_from_payload(output)
                if self.cache is not None:
                    self.cache.put(shard_job.key(), output)

        higher_is_better = PAPER_NETWORKS[job.network].higher_is_better
        for t, slots in shard_slots.items():
            merged = merge_shard_results(slots, higher_is_better)
            results[t] = merged
            if self.cache is not None:
                self.cache.put(
                    job.point_key(job.thetas[t]), result_to_payload(merged)
                )

        self._account(hits=hits, misses=len(pending))
        return [result for result in results if result is not None]

    def _account(self, hits: int, misses: int) -> None:
        self.last_report = RunReport(
            hits=hits,
            misses=misses,
            workers=self.backend.workers_for(misses),
            backend=self.backend.name,
        )
        self.hits += hits
        self.misses += misses

    def _cached_result(self, key: str) -> Optional[MemoizedResult]:
        """Cache lookup that treats stale/corrupt payloads as misses."""
        cached = self.cache.get(key)
        if cached is None:
            return None
        try:
            return result_from_payload(cached)
        except (KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def _check_benchmark(job: SweepJob, benchmark: Benchmark) -> None:
        identity = (benchmark.name, benchmark.scale, benchmark.seed)
        expected = (job.network, job.scale, job.seed)
        if identity != expected:
            raise ValueError(
                f"benchmark identity {identity} does not match job "
                f"spec {expected}; cached results would be mislabelled"
            )
