"""Parallel sweep execution: fan independent points across processes.

The paper's methodology is embarrassingly parallel — every (network,
predictor, theta) evaluation is independent — so :class:`ParallelRunner`
treats a :class:`~repro.runner.job.SweepJob` as a work-queue of point
payloads, resolves as many as possible from the
:class:`~repro.runner.cache.ResultCache`, and fans the remainder out
over a ``ProcessPoolExecutor``.  Workers rebuild benchmarks from the
payload alone (deterministic zoo seeding), so parallel results are
bitwise identical to the serial in-process path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.calibration import ThresholdSweep
from repro.models.benchmark import Benchmark, MemoizedResult
from repro.models.zoo import load_benchmark
from repro.runner.cache import ResultCache
from repro.runner.job import (
    SweepJob,
    result_from_payload,
    result_to_payload,
    scheme_from_payload,
)


def evaluate_point(payload: Mapping[str, object]) -> Dict[str, object]:
    """Worker entry point: evaluate one sweep point from its payload.

    A pure function of the payload — the zoo rebuilds and (lazily)
    trains the benchmark from ``(network, scale, seed)`` with fully
    seeded numpy, so any process computes the same result.  Returns the
    JSON-safe result payload (what the cache stores).
    """
    benchmark = load_benchmark(
        str(payload["network"]),
        scale=str(payload["scale"]),
        seed=int(payload["seed"]),
        trained=False,
    )
    result = benchmark.evaluate_memoized(
        scheme_from_payload(payload), calibration=bool(payload["calibration"])
    )
    return result_to_payload(result)


@dataclass(frozen=True)
class RunReport:
    """Accounting for one :meth:`ParallelRunner.run` call."""

    hits: int = 0
    misses: int = 0
    workers: int = 1

    @property
    def evaluated(self) -> int:
        """Points actually (re-)evaluated — zero on a warm cache."""
        return self.misses


class ParallelRunner:
    """Executes sweep jobs point-by-point, with caching and fan-out.

    The worker pool is created lazily on the first parallel run and
    kept alive for the runner's lifetime: each worker's in-process zoo
    cache then amortises benchmark training across successive ``run``
    calls (a pool-per-call design would retrain the same networks for
    every sweep).  Call :meth:`close` (or use the runner as a context
    manager) to release the workers.

    Args:
        jobs: worker processes; ``1`` evaluates serially in-process
            (no pool), which is also the fallback when only a single
            point misses the cache.
        cache: optional :class:`ResultCache`; ``None`` disables caching.

    Attributes:
        last_report: :class:`RunReport` for the most recent ``run``.
        hits / misses: cumulative counters across the runner's lifetime.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.cache = cache
        self.last_report = RunReport()
        self.hits = 0
        self.misses = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self, job: SweepJob, benchmark: Optional[Benchmark] = None
    ) -> List[MemoizedResult]:
        """Evaluate every theta of ``job``; results in theta order.

        Args:
            job: the sweep spec.
            benchmark: optional live instance to evaluate on when
                running serially (saves a zoo rebuild); it must match
                the job's identity.  Ignored by the process pool, whose
                workers always rebuild from the spec.
        """
        if benchmark is not None:
            self._check_benchmark(job, benchmark)
        payloads = [job.point_payload(theta) for theta in job.thetas]
        keys = [job.point_key(theta) for theta in job.thetas]
        results: List[Optional[MemoizedResult]] = [None] * len(keys)

        missing: List[int] = []
        for i, key in enumerate(keys):
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                try:
                    results[i] = result_from_payload(cached)
                except (KeyError, TypeError, ValueError):
                    results[i] = None  # stale schema -> recompute
            if results[i] is None:
                missing.append(i)

        workers = 1
        if missing:
            if self.jobs > 1 and len(missing) > 1:
                workers = min(self.jobs, len(missing))
                outputs = list(
                    self._get_pool().map(
                        evaluate_point, [payloads[i] for i in missing]
                    )
                )
                for i, output in zip(missing, outputs):
                    results[i] = result_from_payload(output)
                    if self.cache is not None:
                        self.cache.put(keys[i], output)
            else:
                for i in missing:
                    results[i] = self._evaluate_local(payloads[i], benchmark)
                    if self.cache is not None:
                        self.cache.put(keys[i], result_to_payload(results[i]))

        hits = len(keys) - len(missing)
        self.last_report = RunReport(
            hits=hits, misses=len(missing), workers=workers
        )
        self.hits += hits
        self.misses += len(missing)
        return [result for result in results if result is not None]

    def sweep(
        self, job: SweepJob, benchmark: Optional[Benchmark] = None
    ) -> ThresholdSweep:
        """Run ``job`` and fold the points into a :class:`ThresholdSweep`."""
        sweep = ThresholdSweep()
        for theta, result in zip(job.thetas, self.run(job, benchmark=benchmark)):
            sweep.add(theta, result.quality_loss, result.reuse_fraction)
        return sweep

    # -- internals ----------------------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    @staticmethod
    def _evaluate_local(
        payload: Mapping[str, object], benchmark: Optional[Benchmark]
    ) -> MemoizedResult:
        if benchmark is None:
            benchmark = load_benchmark(
                str(payload["network"]),
                scale=str(payload["scale"]),
                seed=int(payload["seed"]),
                trained=False,
            )
        return benchmark.evaluate_memoized(
            scheme_from_payload(payload),
            calibration=bool(payload["calibration"]),
        )

    @staticmethod
    def _check_benchmark(job: SweepJob, benchmark: Benchmark) -> None:
        identity = (benchmark.name, benchmark.scale, benchmark.seed)
        expected = (job.network, job.scale, job.seed)
        if identity != expected:
            raise ValueError(
                f"benchmark identity {identity} does not match job "
                f"spec {expected}; cached results would be mislabelled"
            )
