"""Sweep execution subsystem: job specs, result cache, parallel runner.

The experiment layer (:mod:`repro.analysis`, the CLI, the figure
benches) describes work as :class:`SweepJob` specs and hands them to a
:class:`ParallelRunner`, which resolves points from the content-
addressed :class:`ResultCache` and fans cache misses out over worker
processes.  A single evaluation can additionally be sharded per-batch
(:class:`EvalShardJob`, ``run(..., shards=N)``): shard partials carry
mergeable metric accumulators and reduce to the whole-point result.
Serial, parallel, cached and sharded paths all produce bitwise
identical results.
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.job import (
    CACHE_VERSION,
    DEFAULT_THETAS,
    EvalShardJob,
    SweepJob,
    result_from_payload,
    result_to_payload,
    scheme_from_payload,
)
from repro.runner.parallel import (
    ParallelRunner,
    RunReport,
    evaluate_point,
    evaluate_shard,
)

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_THETAS",
    "EvalShardJob",
    "ParallelRunner",
    "ResultCache",
    "RunReport",
    "SweepJob",
    "evaluate_point",
    "evaluate_shard",
    "result_from_payload",
    "result_to_payload",
    "scheme_from_payload",
]
