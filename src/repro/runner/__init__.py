"""Sweep execution subsystem: job specs, cache, backends, work queue.

The experiment layer (:mod:`repro.analysis`, the CLI, the figure
benches) describes work as :class:`SweepJob` specs and hands them to a
:class:`ParallelRunner`, which resolves points from the content-
addressed :class:`ResultCache` and hands cache misses to a pluggable
:class:`~repro.runner.backends.ExecutionBackend`:

- :class:`SerialBackend` — in-process (the bitwise reference path);
- :class:`ProcessBackend` — a persistent local process pool;
- :class:`QueueBackend` — a file-based multi-host :class:`WorkQueue`
  drained by ``repro worker`` processes, with lease-based crash
  recovery;
- :class:`HttpBackend` — the same queue protocol spoken over HTTP to a
  ``repro coordinator`` (:mod:`repro.runner.transport`), so hosts that
  share no filesystem can join a sweep.

A single evaluation can additionally be sharded per-batch
(:class:`EvalShardJob`, ``run(..., shards=N)``): shard partials carry
mergeable metric accumulators and reduce to the whole-point result.
Serial, parallel, queued, cached and sharded paths all produce bitwise
identical results.
"""

from repro.runner.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    HttpBackend,
    ProcessBackend,
    QueueBackend,
    QueueDrainTimeout,
    QueueTaskFailed,
    SerialBackend,
    make_backend,
)
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.evaluate import (
    evaluate_payload,
    evaluate_point,
    evaluate_shard,
    evaluate_task,
)
from repro.runner.job import (
    CACHE_VERSION,
    DEFAULT_THETAS,
    JOB_KINDS,
    EvalShardJob,
    SweepJob,
    job_from_payload,
    payload_key,
    result_from_payload,
    result_to_payload,
    scheme_from_payload,
)
from repro.runner.parallel import ParallelRunner, RunReport
from repro.runner.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_QUEUE_DIR,
    Task,
    TaskQueue,
    WorkQueue,
    default_owner,
    drain,
    lease_owner,
)
from repro.runner.transport import (
    DEFAULT_COORDINATOR_PORT,
    CoordinatorAuthError,
    CoordinatorServer,
    RemoteWorkQueue,
    TransportError,
    read_token_file,
)

__all__ = [
    "BACKEND_NAMES",
    "CACHE_VERSION",
    "CoordinatorAuthError",
    "CoordinatorServer",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_COORDINATOR_PORT",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_QUEUE_DIR",
    "DEFAULT_THETAS",
    "EvalShardJob",
    "ExecutionBackend",
    "HttpBackend",
    "JOB_KINDS",
    "ParallelRunner",
    "ProcessBackend",
    "QueueBackend",
    "QueueDrainTimeout",
    "QueueTaskFailed",
    "RemoteWorkQueue",
    "ResultCache",
    "RunReport",
    "SerialBackend",
    "SweepJob",
    "Task",
    "TaskQueue",
    "TransportError",
    "WorkQueue",
    "default_owner",
    "drain",
    "lease_owner",
    "read_token_file",
    "evaluate_payload",
    "evaluate_point",
    "evaluate_shard",
    "evaluate_task",
    "job_from_payload",
    "make_backend",
    "payload_key",
    "result_from_payload",
    "result_to_payload",
    "scheme_from_payload",
]
