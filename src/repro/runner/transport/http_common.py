"""Shared stdlib HTTP plumbing for repro's JSON-over-HTTP services.

Two services speak the same dialect — the sweep coordinator
(:mod:`repro.runner.transport.server`) and the online inference front
end (:mod:`repro.serve.server`).  Everything they share lives here, so
the wire hardening is written (and tested) once:

- Bearer-token auth (constant-time compare) before any body is read.
- Capped body reads: ``Content-Length`` is required on POST/PUT, never
  trusted (400 on garbage, 411 when missing, 413 over the cap), and
  gzip request bodies are streamed through a decompressor that enforces
  the cap on the *decompressed* size — a tiny bomb cannot balloon in
  memory.
- Transparent gzip replies for clients that sent ``Accept-Encoding:
  gzip`` (honouring ``q=0`` refusals), above a minimum size where the
  compression round trip pays for itself.
- A flat per-instance route table (``{path: {method: handler}}``, with
  a ``(method, handler)`` tuple accepted as single-method shorthand),
  request counting on known routes only, and error replies that close
  the connection so unread bodies cannot desync a keep-alive socket.
- Request tracing: every request gets an ``X-Repro-Request-Id``
  (adopted from the client when well-formed, minted otherwise) which is
  echoed on every reply — success or error — so one id follows a
  request across tiers and into the event log.
- Per-server telemetry: a :class:`repro.obs.MetricsRegistry` backs the
  request counter (``request_counts`` stays a ``collections.Counter``
  view for existing callers) and a bounded
  :class:`repro.obs.EventLog` collects structured state-transition
  events for ``/api/v1/events``.

Handlers raise :class:`RequestError` to turn any condition into a clean
HTTP error; everything else becomes a 500 without killing the server.
Handlers normally return a JSON-able dict; returning a
:class:`RawReply` instead sends pre-rendered bytes under a custom
content type (how ``/metrics.prom`` serves Prometheus text through the
same auth/gzip path).
"""

from __future__ import annotations

import gzip
import hmac
import json
import sys
import threading
import time
import zlib
from collections import Counter as PathCounts
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.obs import (
    EventLog,
    MetricsRegistry,
    REQUEST_ID_HEADER,
    ensure_request_id,
)

#: Requests larger than this are rejected outright (a result payload
#: for a bench-scale network is ~100 KB; 32 MB is absurd headroom).
#: For gzip requests the limit applies to the *decompressed* size.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Replies smaller than this are sent identity-encoded even to gzip
#: clients: below a packet's worth of JSON the compression round trip
#: costs more than the bytes it saves.
GZIP_MIN_BYTES = 1024

#: ``X-Repro-Protocol`` value: 2 = batch endpoints + gzip both ways.
PROTOCOL_VERSION = 2

#: A single route: either ``{method: handler}`` or the single-method
#: shorthand ``(method, handler)``.
Handler = Callable[
    ["JsonApiHandler", Dict[str, object]],
    Union[Dict[str, object], "RawReply"],
]
Route = Union[Tuple[str, Handler], Mapping[str, Handler]]


class RawReply:
    """A non-JSON response body a handler may return instead of a dict.

    Travels the same reply path as JSON (auth already passed, gzip
    negotiation, request-id echo) but with the given content type —
    Prometheus exposition is the one current user.
    """

    __slots__ = ("body", "content_type")

    def __init__(
        self,
        body: Union[str, bytes],
        content_type: str = "text/plain; charset=utf-8",
    ):
        self.body = body.encode("utf-8") if isinstance(body, str) else body
        self.content_type = content_type


def read_token_file(path: Union[str, Path]) -> str:
    """The shared secret stored at ``path`` (stripped; must be non-empty)."""
    token = Path(path).read_text(encoding="utf-8").strip()
    if not token:
        raise ValueError(f"token file {path} is empty")
    return token


class RequestError(Exception):
    """An HTTP error response to send instead of a result body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def gunzip_capped(raw: bytes, limit: int) -> bytes:
    """Decompress a gzip body, refusing to inflate past ``limit`` bytes.

    Streaming decompression with ``max_length`` means a compression
    bomb is cut off at the cap instead of ballooning in memory first.
    """
    decompressor = zlib.decompressobj(16 + zlib.MAX_WBITS)
    try:
        body = decompressor.decompress(raw, limit + 1)
    except zlib.error as exc:
        raise RequestError(400, f"request body is not valid gzip: {exc}") from exc
    if len(body) > limit or decompressor.unconsumed_tail:
        raise RequestError(413, f"decompressed body exceeds {limit} bytes")
    if not decompressor.eof:
        raise RequestError(400, "truncated gzip body")
    return body


class JsonApiHandler(BaseHTTPRequestHandler):
    """Routes one request through the owning :class:`JsonApiServer`."""

    server: "JsonApiServer"
    protocol_version = "HTTP/1.1"  # keep-alive: clients call in a loop

    # -- plumbing -----------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    @staticmethod
    def _methods(route: Route) -> Mapping[str, Handler]:
        if isinstance(route, tuple):
            method, handler = route
            return {method: handler}
        return route

    def _dispatch(self, method: str) -> None:
        # Trace id first: even a 401 echoes the id, so a client can
        # correlate every reply — including failures — with its attempt.
        self.request_id = ensure_request_id(
            self.headers.get(REQUEST_ID_HEADER)
        )
        if self.path in self.server.routes:
            # Known endpoints only: the counter is keyed by client-sent
            # paths, and counting arbitrary scanned URLs would grow it
            # without bound over the server's lifetime.
            self.server.count_request(self.path)
        try:
            if not self._authorized():
                raise RequestError(401, "missing or bad bearer token")
            route = self.server.routes.get(self.path)
            if route is None:
                raise RequestError(404, f"unknown endpoint {self.path}")
            methods = self._methods(route)
            handler = methods.get(method)
            if handler is None:
                allowed = "/".join(sorted(methods))
                raise RequestError(405, f"{self.path} requires {allowed}")
            body = self._read_body() if method != "GET" else {}
            self._reply(200, handler(self, body))
        except RequestError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except Exception as exc:  # never let a handler kill the server
            # The swallowed traceback still surfaces: every 500 lands in
            # the event ring with its request id, visible at /api/v1/events.
            self._event(
                "handler_error",
                path=self.path,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _authorized(self) -> bool:
        token = self.server.token
        if token is None:
            return True
        header = self.headers.get("Authorization", "")
        return hmac.compare_digest(header, f"Bearer {token}")

    def _read_body(self) -> Dict[str, object]:
        header = self.headers.get("Content-Length")
        if header is None:
            # Without a length we cannot know where this request's body
            # ends on a keep-alive socket; demand one instead of
            # guessing (411 Length Required).
            raise RequestError(411, "POST requires a Content-Length header")
        try:
            length = int(header)
        except (TypeError, ValueError):
            raise RequestError(
                400, f"invalid Content-Length {header!r}"
            ) from None
        if length < 0:
            # rfile.read(-1) would block reading until EOF — on a
            # keep-alive socket, forever.  Never trust the header.
            raise RequestError(400, f"invalid Content-Length {header!r}")
        if length > self.server.max_body_bytes:
            raise RequestError(413, f"body of {length} bytes is too large")
        raw = self.rfile.read(length) if length else b""
        encoding = self.headers.get("Content-Encoding", "identity").lower()
        if encoding == "gzip":
            raw = gunzip_capped(raw, self.server.max_body_bytes)
        elif encoding not in ("", "identity"):
            raise RequestError(415, f"unsupported Content-Encoding {encoding!r}")
        try:
            body = json.loads(raw or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RequestError(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise RequestError(400, "request body must be a JSON object")
        return body

    def _accepts_gzip(self) -> bool:
        """Whether the client accepts a gzip reply (q=0 is a refusal)."""
        for token in self.headers.get("Accept-Encoding", "").split(","):
            coding, _, params = token.partition(";")
            if coding.strip().lower() != "gzip":
                continue
            name, _, value = params.partition("=")
            if name.strip().lower() == "q":
                try:
                    return float(value.strip()) > 0
                except ValueError:
                    return False
            return True
        return False

    def _reply(
        self, status: int, payload: Union[Dict[str, object], RawReply]
    ) -> None:
        if isinstance(payload, RawReply):
            data = payload.body
            content_type = payload.content_type
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        content_encoding = None
        if (
            status < 400
            and len(data) >= GZIP_MIN_BYTES
            and self._accepts_gzip()
        ):
            data = gzip.compress(data, compresslevel=5)
            content_encoding = "gzip"
        if status >= 400:
            # Error replies may be sent before the request body was
            # read (auth failures, unknown endpoints); on a keep-alive
            # connection the unread bytes would be parsed as the next
            # request line, desyncing the socket — close it instead.
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Repro-Protocol", str(PROTOCOL_VERSION))
        request_id = getattr(self, "request_id", None)
        if request_id:
            self.send_header(REQUEST_ID_HEADER, request_id)
        if content_encoding:
            self.send_header("Content-Encoding", content_encoding)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        # Per-request access logging is noise at client poll/request
        # rates; explicit event log lines are the useful signal.
        pass

    def _log_event(self, message: str) -> None:
        self.server.log(message)

    def _event(self, kind: str, **fields: object) -> None:
        """Record a structured event, stamped with this request's id."""
        self.server.events.emit(kind, request_id=self.request_id, **fields)


class JsonApiServer(ThreadingHTTPServer):
    """Threaded HTTP server shell: auth, routes, counters, lifecycle.

    Args:
        host / port: bind address; port ``0`` picks an ephemeral port
            (``server_port`` / ``url`` report the actual one).
        handler: the :class:`JsonApiHandler` subclass to dispatch to.
        routes: the instance route table (a mutable copy is kept, so
            tests can delete entries to impersonate older peers).
        token: shared secret; ``None`` serves unauthenticated (loopback
            testing).  Production deployments should always set one.
        quiet: suppress event log lines (tests).
        max_body_bytes: per-request body cap, applied to the
            decompressed size for gzip requests.
        registry: the metrics registry to record into; a fresh one is
            created when not supplied (the serving tier passes its
            ``ServeState``'s registry so engine and HTTP metrics share
            one exposition).
        events: the structured event log backing ``/api/v1/events``;
            fresh when not supplied, shareable for the same reason.
    """

    daemon_threads = True
    allow_reuse_address = True

    #: Prefix on event log lines; subclasses override.
    log_name = "api"

    def __init__(
        self,
        host: str,
        port: int,
        handler: type,
        routes: Mapping[str, Route],
        token: Optional[str] = None,
        quiet: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ):
        self.token = token
        self.quiet = quiet
        self.max_body_bytes = int(max_body_bytes)
        #: The live route table — an instance copy, free to edit.
        self.routes: Dict[str, Route] = dict(routes)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self._request_counter = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint path.",
            label_names=("path",),
        )
        # Monotonic: feeds uptime spans, which must not jump when NTP
        # steps the wall clock.
        self.started_at = time.monotonic()
        self._log_lock = threading.Lock()
        super().__init__((host, port), handler)

    def count_request(self, path: str) -> None:
        self._request_counter.inc(labels=(path,))

    @property
    def request_counts(self) -> PathCounts:
        """Requests served, by path — how the wire tests prove how many
        round trips an operation costs.  A snapshot view over the
        registry counter; missing paths read as ``0``."""
        return PathCounts(
            {path: int(count) for (path,), count in
             self._request_counter.series().items()}
        )

    @property
    def url(self) -> str:
        """The base URL clients should be pointed at."""
        host, port = self.server_address[:2]
        if host == "0.0.0.0":  # bound everywhere; loopback always works
            host = "127.0.0.1"
        return f"http://{host}:{port}"

    def log(self, message: str) -> None:
        if self.quiet:
            return
        with self._log_lock:
            print(f"[{self.log_name}] {message}", file=sys.stderr, flush=True)

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread (tests, embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        """Shut down the serve loop and release the listening socket."""
        self.shutdown()
        self.server_close()
