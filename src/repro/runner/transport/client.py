"""``RemoteWorkQueue``: the ``TaskQueue`` contract spoken over HTTP.

A worker (or a ``--backend http`` submitter) holds nothing but a
coordinator URL and, optionally, a shared token — no mount, no queue
directory.  Every :class:`~repro.runner.queue.TaskQueue` method maps to
one coordinator endpoint; the queue semantics (atomic claims, lease
heartbeats, expiry re-queueing, sticky quarantine, idempotent
completes) live entirely on the coordinator, so this client is a thin,
*retrying* proxy:

- Connection failures, timeouts and 5xx responses are retried with
  bounded exponential backoff — a coordinator restart mid-sweep (its
  state is on disk) looks like a brief network blip, not a failure.
- 4xx responses are **not** retried: they mean this client sent
  something the coordinator will never accept (bad token, malformed
  task id), and repeating it would just re-fail.
- Completes are idempotent end to end: re-sending a ``complete`` whose
  first response was lost re-stores the same content-addressed result
  and re-releases an already-released lease, both harmless.

Batching and compression are *negotiated*, never assumed:
:meth:`RemoteWorkQueue.submit_many` / :meth:`~RemoteWorkQueue.poll_many`
try the coordinator's ``batch/*`` endpoints once and permanently fall
back to the per-task loop on a 404 (an older coordinator), and request
bodies are gzip-compressed only after a reply has proven the peer
speaks protocol >= 2 (the ``X-Repro-Protocol`` header) — so a new
client against an old coordinator degrades to exactly the PR 4 wire
format instead of breaking.

Requests are stdlib ``urllib`` — the client side, like the server side,
adds no dependencies.
"""

from __future__ import annotations

import gzip
import json
import math
import threading
import time
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs import REQUEST_ID_HEADER, new_request_id
from repro.runner.queue import Task, TaskQueue

#: Attempts per request: 1 + DEFAULT_RETRIES.  With the default backoff
#: the final attempt lands ~25 s after the first — enough to ride out a
#: coordinator restart, bounded enough to fail fast when it's gone.
DEFAULT_RETRIES = 7

#: First retry delay in seconds; doubles per attempt.
DEFAULT_BACKOFF = 0.2

#: Request bodies below this many bytes are sent identity-encoded even
#: in ``gzip='auto'`` mode: compressing a 200-byte heartbeat wastes
#: more cycles than wire bytes it saves.
GZIP_MIN_BYTES = 1024

#: How long (seconds) the cached coordinator ``lease_ttl`` may be
#: trusted before it is re-fetched: a coordinator restarted with a
#: different ``--lease-ttl`` must not leave workers heartbeating on the
#: stale period forever.
LEASE_TTL_MAX_AGE = 60.0

#: Valid values for :class:`RemoteWorkQueue`'s ``gzip_mode``.
GZIP_MODES = ("auto", "always", "off")

#: Items per batch request.  Stays far under the coordinator's
#: 10,000-id ``batch/poll`` cap and keeps ``batch/submit`` bodies well
#: clear of the request size limit, so a sweep of any size chunks into
#: a handful of round trips instead of tripping a 413.
BATCH_CHUNK = 1_000


class _CorruptReply(Exception):
    """A reply body that would not decode (bad gzip).  Internal: raised
    by ``_once`` and caught by ``_call``'s retry loop, because a
    mangled reply is as transient as a dropped connection — the same
    corruption on an identity-encoded reply surfaces as a (retried)
    ``json.JSONDecodeError``."""


class TransportError(RuntimeError):
    """The coordinator could not be reached or rejected the request.

    ``status`` carries the HTTP status code when the coordinator
    answered with an error (``None`` for connection-level failures) —
    how callers distinguish "this endpoint does not exist on that
    coordinator" (404: fall back to the old wire format) from "my
    request is malformed" (400: give up).
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class CoordinatorAuthError(TransportError):
    """The coordinator rejected this client's bearer token (HTTP 401/403)."""


class RemoteResults:
    """The coordinator's result store, shaped like a ``ResultCache``.

    Exactly the three operations the queue machinery uses: ``get`` /
    ``put`` / ``discard`` (plus membership).  Results live on the
    coordinator host, content-addressed under the same keys the local
    cache would use, so a submitter copies them straight into its own
    ``--cache-dir``.
    """

    def __init__(self, queue: "RemoteWorkQueue"):
        self._queue = queue

    def get(self, key: str) -> Optional[Dict[str, object]]:
        reply = self._queue._call("results/get", {"key": key})
        return reply["result"] if reply.get("found") else None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        self._queue._call("results/put", {"key": key, "result": payload})

    def discard(self, key: str) -> None:
        self._queue._call("results/discard", {"key": key})

    def discard_many(self, keys: Sequence[str]) -> None:
        """Forget every key via ``results/discard_many``, chunked.

        The ``--no-cache`` submitter discards all of a sweep's stale
        results up front; batching keeps that O(1) round trips instead
        of one per point.  Falls back to per-key ``discard`` against an
        older coordinator.
        """
        keys = list(keys)
        if not keys:
            return
        if self._queue._batch_calls("results/discard_many", "keys", keys) is None:
            for key in keys:
                self.discard(key)

    def __contains__(self, key: str) -> bool:
        """Membership without the payload.

        Uses the lightweight ``results/has`` endpoint so a cache-hit
        check does not download a bench-scale result just to throw it
        away; against an older coordinator (404) it falls back to
        :meth:`get`, trading bytes for compatibility.
        """
        queue = self._queue
        if queue._batch_ok is not False:
            try:
                reply = queue._call("results/has", {"key": key})
                queue._batch_ok = True
                return bool(reply.get("found"))
            except TransportError as exc:
                if exc.status != 404:
                    raise
                queue._batch_ok = False
        return self.get(key) is not None


class RemoteWorkQueue(TaskQueue):
    """A work queue that lives behind ``repro coordinator`` somewhere.

    Args:
        url: coordinator base URL, e.g. ``http://10.0.0.5:8642``.
        token: shared secret matching the coordinator's ``--token-file``
            (``None`` for an unauthenticated coordinator).
        retries: retransmissions per request after the first attempt
            (connection errors / timeouts / 5xx only).
        backoff: first retry delay in seconds; doubles per attempt.
        timeout: per-request socket timeout in seconds.
        gzip_mode: ``'auto'`` (default) compresses request bodies above
            :data:`GZIP_MIN_BYTES` once the coordinator has advertised
            protocol >= 2; ``'always'`` compresses every body
            unconditionally (CI's forced-gzip smoke); ``'off'`` never
            compresses.  Replies are decompressed in every mode.
        lease_ttl_max_age: seconds before the cached coordinator
            ``lease_ttl`` is considered stale and re-fetched.

    Wire accounting: ``round_trips``, ``bytes_sent`` and
    ``bytes_received`` count every attempt's on-the-wire traffic
    (compressed sizes, not JSON sizes) — the overhead bench records
    them per backend.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        timeout: float = 30.0,
        gzip_mode: str = "auto",
        lease_ttl_max_age: float = LEASE_TTL_MAX_AGE,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if gzip_mode not in GZIP_MODES:
            raise ValueError(
                f"gzip_mode must be one of {GZIP_MODES}, got {gzip_mode!r}"
            )
        self.url = url.rstrip("/")
        self.token = token
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.timeout = float(timeout)
        self.gzip_mode = gzip_mode
        self.lease_ttl_max_age = float(lease_ttl_max_age)
        self.results = RemoteResults(self)
        self.round_trips = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: The id the coordinator echoed on the most recent reply —
        #: what an operator quotes to find this client's requests in
        #: the coordinator's ``/api/v1/events``.
        self.last_request_id: Optional[str] = None
        #: claim-minted request id per live task: ``extend`` /
        #: ``complete`` / ``fail`` reuse the claim's id, so one id
        #: follows a task across its whole lease on the coordinator.
        self._task_request_ids: Dict[str, str] = {}
        self._wire_lock = threading.Lock()
        self._lease_ttl: Optional[float] = None
        self._lease_ttl_fetched = 0.0
        #: Tri-state: ``None`` until the first protocol-2 endpoint is
        #: tried; ``False`` pins the per-task fallback after a 404.
        self._batch_ok: Optional[bool] = None
        #: Set once any reply proves the peer speaks protocol >= 2
        #: (gzip requests are only worth sending after that).
        self._peer_gzip = False
        #: Pinned when a gzip request bounced with 400/415 — the
        #: coordinator was swapped for a build that cannot decompress
        #: (auto mode then stays on identity even though the old
        #: replies already advertised protocol 2).
        self._gzip_refused = False

    # -- TaskQueue contract -------------------------------------------------

    @property
    def location(self) -> str:
        return self.url

    @property
    def lease_ttl(self) -> float:
        """The coordinator's TTL (it owns the policy), refreshed when stale.

        A coordinator restarted with a different ``--lease-ttl`` must
        not leave this client heartbeating on the old period forever,
        so the cached value is re-fetched after ``lease_ttl_max_age``
        seconds.  A failed refresh keeps the stale value (a heartbeat
        on a slightly wrong period beats no heartbeat at all) and is
        retried within a few seconds, not after another full staleness
        window.
        """
        now = time.monotonic()
        if self._lease_ttl is None:
            self._lease_ttl = self._fetch_lease_ttl()
            self._lease_ttl_fetched = now
        elif now - self._lease_ttl_fetched >= self.lease_ttl_max_age:
            try:
                self._lease_ttl = self._fetch_lease_ttl()
                self._lease_ttl_fetched = now
            except TransportError:
                # Back-date the stamp so the next read past a short
                # grace period retries, instead of trusting the stale
                # value for a whole fresh staleness window.
                retry = min(5.0, self.lease_ttl_max_age)
                self._lease_ttl_fetched = now - self.lease_ttl_max_age + retry
        return self._lease_ttl

    def _fetch_lease_ttl(self) -> float:
        """The coordinator's ``lease_ttl``, validated finite and positive.

        ``json.loads`` accepts ``NaN``/``Infinity``, and a NaN TTL makes
        every heartbeat-interval comparison silently False — so a bad
        value from the wire is a :class:`TransportError` (the refresh
        path then keeps the previous TTL), never a cached poison value.
        """
        raw = self.stats()["lease_ttl"]
        try:
            ttl = float(raw)
        except (TypeError, ValueError) as exc:
            raise TransportError(f"coordinator sent non-numeric lease_ttl {raw!r}") from exc
        if not math.isfinite(ttl) or ttl <= 0:
            raise TransportError(f"coordinator sent invalid lease_ttl {raw!r}")
        return ttl

    def submit(self, payload: Mapping[str, object]) -> str:
        reply = self._call("submit", {"payload": dict(payload)})
        return str(reply["task_id"])

    def _batch_calls(
        self, endpoint: str, field: str, items: List[object]
    ) -> Optional[List[Dict[str, object]]]:
        """Send ``items`` to a protocol-2 batch endpoint, chunked.

        One round trip per :data:`BATCH_CHUNK` items (a single trip for
        any normal sweep), returning the per-chunk replies.  Returns
        ``None`` when the coordinator predates the endpoint: the first
        404 pins ``_batch_ok`` False so every batch operation drops to
        its per-task fallback permanently.  A 404 can only happen on
        the first chunk (the route either exists or doesn't), and all
        batch operations are idempotent, so re-running per-task after
        partial chunks is harmless.
        """
        if self._batch_ok is False:
            return None
        try:
            replies = []
            for start in range(0, len(items), BATCH_CHUNK):
                replies.append(
                    self._call(endpoint, {field: items[start:start + BATCH_CHUNK]})
                )
                self._batch_ok = True
            return replies
        except TransportError as exc:
            if exc.status != 404:
                raise
            self._batch_ok = False
            return None

    def _malformed(self, endpoint: str) -> TransportError:
        return TransportError(
            f"coordinator {self.url} sent a malformed {endpoint} reply"
        )

    def submit_many(self, payloads: Sequence[Mapping[str, object]]) -> List[str]:
        """Enqueue every payload via ``batch/submit``; per-task fallback."""
        payloads = [dict(payload) for payload in payloads]
        if not payloads:
            return []
        replies = self._batch_calls("batch/submit", "payloads", payloads)
        if replies is None:
            return super().submit_many(payloads)
        ids: List[str] = []
        for reply in replies:
            task_ids = reply.get("task_ids")
            if not isinstance(task_ids, list):
                raise self._malformed("batch/submit")
            ids.extend(str(task_id) for task_id in task_ids)
        return ids

    def poll_many(
        self, task_ids: Sequence[str]
    ) -> Dict[str, Dict[str, object]]:
        """Status of every task via ``batch/poll``; per-task fallback
        (``results/get`` + ``failed`` + ``lease`` per task)."""
        task_ids = list(dict.fromkeys(task_ids))  # reply is keyed by id
        if not task_ids:
            return {}
        replies = self._batch_calls("batch/poll", "task_ids", task_ids)
        if replies is None:
            return super().poll_many(task_ids)
        snapshot: Dict[str, Dict[str, object]] = {}
        for reply in replies:
            tasks = reply.get("tasks")
            if not isinstance(tasks, dict):
                raise self._malformed("batch/poll")
            snapshot.update(
                (task_id, dict(entry) if isinstance(entry, dict) else {})
                for task_id, entry in tasks.items()
            )
        return snapshot

    def claim(self, worker: str = "") -> Optional[Task]:
        request_id = new_request_id()
        reply = self._call("claim", {"worker": worker}, request_id=request_id)
        if reply.get("task", "present") is None:
            return None
        task_id = str(reply["task_id"])
        with self._wire_lock:
            self._task_request_ids[task_id] = request_id
        return Task(
            task_id=task_id,
            payload=dict(reply["payload"]),
            lease=str(reply["lease"]),
        )

    def _task_request_id(self, task_id: str, pop: bool = False) -> Optional[str]:
        """The claim's request id for ``task_id`` (popped when the task
        leaves this worker's hands)."""
        with self._wire_lock:
            if pop:
                return self._task_request_ids.pop(task_id, None)
            return self._task_request_ids.get(task_id)

    def extend(self, task: Task) -> None:
        self._call(
            "extend",
            {"task_id": task.task_id, "lease": task.lease},
            request_id=self._task_request_id(task.task_id),
        )

    def complete(self, task: Task) -> None:
        self._call(
            "complete",
            {"task_id": task.task_id, "lease": task.lease},
            request_id=self._task_request_id(task.task_id, pop=True),
        )

    def fail(self, task: Task, error: str = "") -> None:
        self._call(
            "fail",
            {"task_id": task.task_id, "lease": task.lease, "error": error},
            request_id=self._task_request_id(task.task_id, pop=True),
        )

    def is_failed(self, task_id: str) -> bool:
        return bool(self._call("failed", {"task_id": task_id})["failed"])

    def failed_error(self, task_id: str) -> str:
        return str(self._call("failed", {"task_id": task_id})["error"])

    def has_live_lease(self, task_id: str) -> bool:
        return bool(self._call("lease", {"task_id": task_id})["live"])

    def requeue_expired(self, now: Optional[float] = None) -> int:
        del now  # expiry is judged by the coordinator's clock, not ours
        return int(self._call("requeue", {})["requeued"])

    def stats(self) -> Dict[str, object]:
        return self._call("stats", method="GET")

    def pending_count(self) -> int:
        return int(self.stats()["pending"])

    def active_count(self) -> int:
        return int(self.stats()["active"])

    def failed_count(self) -> int:
        return int(self.stats()["failed"])

    def active_owners(self) -> List[str]:
        return [str(owner) for owner in self.stats()["owners"]]

    # -- wire ---------------------------------------------------------------

    def _call(
        self,
        endpoint: str,
        body: Optional[Dict[str, object]] = None,
        method: str = "POST",
        request_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """One coordinator round-trip with bounded retry-with-backoff.

        Every attempt of one logical call carries the *same*
        ``X-Repro-Request-Id`` (supplied, or minted here), so retries of
        a lost reply are recognisably one request in the coordinator's
        event log.
        """
        request_id = request_id or new_request_id()
        last_error: Optional[Exception] = None
        attempt = 0
        while attempt <= self.retries:
            if attempt:
                time.sleep(self.backoff * 2 ** (attempt - 1))
            try:
                return self._once(endpoint, body, method, request_id)
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code in (401, 403):
                    raise CoordinatorAuthError(
                        f"coordinator {self.url} rejected credentials "
                        f"({exc.code}): {detail}",
                        status=exc.code,
                    ) from exc
                if (
                    exc.code in (400, 415)
                    and self.gzip_mode == "auto"
                    and getattr(exc, "repro_request_gzipped", False)
                    and not self._gzip_refused
                ):
                    # The negotiated gzip bounced: the coordinator was
                    # likely swapped mid-sweep for an old build that
                    # cannot decompress.  Degrade to identity (pinned)
                    # and resend without consuming a retry attempt —
                    # the pin makes this free retry a once-per-client
                    # event, and it must run even with retries=0.
                    self._gzip_refused = True
                    last_error = exc
                    continue
                if 400 <= exc.code < 500 and exc.code != 408:
                    # Our request is wrong; re-sending it cannot help.
                    raise TransportError(
                        f"coordinator {self.url} rejected "
                        f"/{endpoint} ({exc.code}): {detail}",
                        status=exc.code,
                    ) from exc
                last_error = exc  # 5xx / 408: the coordinator's problem
                attempt += 1
            except (
                urllib.error.URLError,
                HTTPException,
                ConnectionError,
                TimeoutError,
                json.JSONDecodeError,
                _CorruptReply,
            ) as exc:
                last_error = exc
                attempt += 1
        raise TransportError(
            f"coordinator {self.url} unreachable: /{endpoint} failed "
            f"{self.retries + 1} time(s); last error: {last_error}"
        )

    def _gzip_requests(self) -> bool:
        """Whether to gzip this request's body (mode + peer knowledge)."""
        if self.gzip_mode == "off":
            return False
        if self.gzip_mode == "always":
            return True
        # auto: only once the coordinator has proven it understands
        # gzip bodies — an old coordinator would 400 on one — and has
        # never bounced one (a mid-sweep downgrade to an old build).
        return self._peer_gzip and not self._gzip_refused

    def _once(
        self,
        endpoint: str,
        body: Optional[Dict[str, object]],
        method: str,
        request_id: str,
    ) -> Dict[str, object]:
        data = None
        request_gzipped = False
        headers = {
            "Accept": "application/json",
            "Accept-Encoding": "gzip",
            REQUEST_ID_HEADER: request_id,
        }
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if method == "POST":
            data = json.dumps(body or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
            if self._gzip_requests() and (
                self.gzip_mode == "always" or len(data) >= GZIP_MIN_BYTES
            ):
                data = gzip.compress(data, compresslevel=5)
                headers["Content-Encoding"] = "gzip"
                request_gzipped = True
        request = urllib.request.Request(
            f"{self.url}/api/v1/{endpoint}",
            data=data,
            headers=headers,
            method=method,
        )
        with self._wire_lock:
            self.round_trips += 1
            self.bytes_sent += len(data) if data else 0
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                raw = response.read()
                reply_headers = response.headers
        except urllib.error.HTTPError as exc:
            # Mark whether *this* attempt compressed its body, so the
            # retry loop can tell a gzip rejection from a genuine 400.
            exc.repro_request_gzipped = request_gzipped
            raise
        with self._wire_lock:
            self.bytes_received += len(raw)
            self.last_request_id = (
                reply_headers.get(REQUEST_ID_HEADER) or request_id
            )
        if reply_headers.get("X-Repro-Protocol"):
            self._peer_gzip = True
        if reply_headers.get("Content-Encoding", "").lower() == "gzip":
            try:
                raw = gzip.decompress(raw)
            except (OSError, EOFError) as exc:
                raise _CorruptReply(
                    f"undecodable gzip reply for /{endpoint}: {exc}"
                ) from exc
        reply = json.loads(raw.decode("utf-8"))
        if not isinstance(reply, dict):
            raise TransportError(
                f"coordinator {self.url} sent a non-object reply "
                f"for /{endpoint}"
            )
        return reply

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        """The server's JSON error message, if it sent one."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return str(payload.get("error", payload))
        except Exception:  # checks: allow-broad-except best-effort parse of a failed reply's body
            return exc.reason if isinstance(exc.reason, str) else str(exc)
