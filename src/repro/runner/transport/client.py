"""``RemoteWorkQueue``: the ``TaskQueue`` contract spoken over HTTP.

A worker (or a ``--backend http`` submitter) holds nothing but a
coordinator URL and, optionally, a shared token — no mount, no queue
directory.  Every :class:`~repro.runner.queue.TaskQueue` method maps to
one coordinator endpoint; the queue semantics (atomic claims, lease
heartbeats, expiry re-queueing, sticky quarantine, idempotent
completes) live entirely on the coordinator, so this client is a thin,
*retrying* proxy:

- Connection failures, timeouts and 5xx responses are retried with
  bounded exponential backoff — a coordinator restart mid-sweep (its
  state is on disk) looks like a brief network blip, not a failure.
- 4xx responses are **not** retried: they mean this client sent
  something the coordinator will never accept (bad token, malformed
  task id), and repeating it would just re-fail.
- Completes are idempotent end to end: re-sending a ``complete`` whose
  first response was lost re-stores the same content-addressed result
  and re-releases an already-released lease, both harmless.

Requests are stdlib ``urllib`` — the client side, like the server side,
adds no dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Dict, List, Mapping, Optional

from repro.runner.queue import Task, TaskQueue

#: Attempts per request: 1 + DEFAULT_RETRIES.  With the default backoff
#: the final attempt lands ~25 s after the first — enough to ride out a
#: coordinator restart, bounded enough to fail fast when it's gone.
DEFAULT_RETRIES = 7

#: First retry delay in seconds; doubles per attempt.
DEFAULT_BACKOFF = 0.2


class TransportError(RuntimeError):
    """The coordinator could not be reached or rejected the request."""


class CoordinatorAuthError(TransportError):
    """The coordinator rejected this client's bearer token (HTTP 401/403)."""


class RemoteResults:
    """The coordinator's result store, shaped like a ``ResultCache``.

    Exactly the three operations the queue machinery uses: ``get`` /
    ``put`` / ``discard`` (plus membership).  Results live on the
    coordinator host, content-addressed under the same keys the local
    cache would use, so a submitter copies them straight into its own
    ``--cache-dir``.
    """

    def __init__(self, queue: "RemoteWorkQueue"):
        self._queue = queue

    def get(self, key: str) -> Optional[Dict[str, object]]:
        reply = self._queue._call("results/get", {"key": key})
        return reply["result"] if reply.get("found") else None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        self._queue._call("results/put", {"key": key, "result": payload})

    def discard(self, key: str) -> None:
        self._queue._call("results/discard", {"key": key})

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class RemoteWorkQueue(TaskQueue):
    """A work queue that lives behind ``repro coordinator`` somewhere.

    Args:
        url: coordinator base URL, e.g. ``http://10.0.0.5:8642``.
        token: shared secret matching the coordinator's ``--token-file``
            (``None`` for an unauthenticated coordinator).
        retries: retransmissions per request after the first attempt
            (connection errors / timeouts / 5xx only).
        backoff: first retry delay in seconds; doubles per attempt.
        timeout: per-request socket timeout in seconds.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        timeout: float = 30.0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.url = url.rstrip("/")
        self.token = token
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.timeout = float(timeout)
        self.results = RemoteResults(self)
        self._lease_ttl: Optional[float] = None

    # -- TaskQueue contract -------------------------------------------------

    @property
    def location(self) -> str:
        return self.url

    @property
    def lease_ttl(self) -> float:
        """The coordinator's TTL (fetched once; it owns the policy)."""
        if self._lease_ttl is None:
            self._lease_ttl = float(self.stats()["lease_ttl"])
        return self._lease_ttl

    def submit(self, payload: Mapping[str, object]) -> str:
        reply = self._call("submit", {"payload": dict(payload)})
        return str(reply["task_id"])

    def claim(self, worker: str = "") -> Optional[Task]:
        reply = self._call("claim", {"worker": worker})
        if reply.get("task", "present") is None:
            return None
        return Task(
            task_id=str(reply["task_id"]),
            payload=dict(reply["payload"]),
            lease=str(reply["lease"]),
        )

    def extend(self, task: Task) -> None:
        self._call("extend", {"task_id": task.task_id, "lease": task.lease})

    def complete(self, task: Task) -> None:
        self._call("complete", {"task_id": task.task_id, "lease": task.lease})

    def fail(self, task: Task, error: str = "") -> None:
        self._call(
            "fail",
            {"task_id": task.task_id, "lease": task.lease, "error": error},
        )

    def is_failed(self, task_id: str) -> bool:
        return bool(self._call("failed", {"task_id": task_id})["failed"])

    def failed_error(self, task_id: str) -> str:
        return str(self._call("failed", {"task_id": task_id})["error"])

    def has_live_lease(self, task_id: str) -> bool:
        return bool(self._call("lease", {"task_id": task_id})["live"])

    def requeue_expired(self, now: Optional[float] = None) -> int:
        del now  # expiry is judged by the coordinator's clock, not ours
        return int(self._call("requeue", {})["requeued"])

    def stats(self) -> Dict[str, object]:
        return self._call("stats", method="GET")

    def pending_count(self) -> int:
        return int(self.stats()["pending"])

    def active_count(self) -> int:
        return int(self.stats()["active"])

    def failed_count(self) -> int:
        return int(self.stats()["failed"])

    def active_owners(self) -> List[str]:
        return [str(owner) for owner in self.stats()["owners"]]

    # -- wire ---------------------------------------------------------------

    def _call(
        self,
        endpoint: str,
        body: Optional[Dict[str, object]] = None,
        method: str = "POST",
    ) -> Dict[str, object]:
        """One coordinator round-trip with bounded retry-with-backoff."""
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * 2 ** (attempt - 1))
            try:
                return self._once(endpoint, body, method)
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code in (401, 403):
                    raise CoordinatorAuthError(
                        f"coordinator {self.url} rejected credentials "
                        f"({exc.code}): {detail}"
                    )
                if 400 <= exc.code < 500 and exc.code != 408:
                    # Our request is wrong; re-sending it cannot help.
                    raise TransportError(
                        f"coordinator {self.url} rejected "
                        f"/{endpoint} ({exc.code}): {detail}"
                    )
                last_error = exc  # 5xx / 408: the coordinator's problem
            except (
                urllib.error.URLError,
                HTTPException,
                ConnectionError,
                TimeoutError,
                json.JSONDecodeError,
            ) as exc:
                last_error = exc
        raise TransportError(
            f"coordinator {self.url} unreachable: /{endpoint} failed "
            f"{self.retries + 1} time(s); last error: {last_error}"
        )

    def _once(
        self,
        endpoint: str,
        body: Optional[Dict[str, object]],
        method: str,
    ) -> Dict[str, object]:
        data = None
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if method == "POST":
            data = json.dumps(body or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}/api/v1/{endpoint}",
            data=data,
            headers=headers,
            method=method,
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            reply = json.loads(response.read().decode("utf-8"))
        if not isinstance(reply, dict):
            raise TransportError(
                f"coordinator {self.url} sent a non-object reply "
                f"for /{endpoint}"
            )
        return reply

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        """The server's JSON error message, if it sent one."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return str(payload.get("error", payload))
        except Exception:
            return exc.reason if isinstance(exc.reason, str) else str(exc)
