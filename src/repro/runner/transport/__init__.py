"""HTTP transport: the work queue served over a socket, no mount needed.

The file-based :class:`~repro.runner.queue.WorkQueue` coordinates hosts
through a shared filesystem; this package removes that requirement by
putting one HTTP coordinator in front of the queue directory:

- :class:`CoordinatorServer` (``repro coordinator``) — a stdlib-only
  ``ThreadingHTTPServer`` that owns the queue directory and exposes the
  :class:`~repro.runner.queue.TaskQueue` contract as REST endpoints
  (``submit`` / ``claim`` / ``extend`` / ``complete`` / ``fail`` /
  ``stats`` plus the result store, and the batched ``batch/submit`` /
  ``batch/poll`` that answer a whole sweep's poll tick in one round
  trip), guarded by an optional shared token, with transparent gzip on
  request and reply bodies.
- :class:`RemoteWorkQueue` (``repro worker --coordinator URL``,
  ``--backend http``) — a urllib client implementing the same
  :class:`~repro.runner.queue.TaskQueue` contract against that URL,
  with bounded exponential-backoff retries so a coordinator restart
  mid-sweep is survived, not fatal.  Batch endpoints and request
  compression are negotiated: against an older coordinator the client
  falls back to the per-task endpoints and identity encoding.

The topology mirrors the paper's distributed DAQ: many dumb readout
workers, one event builder.  Because both sides speak the exact
interface of the file queue, every guarantee the queue suite proves —
atomic claims, heartbeat leases, expiry re-queueing, sticky poison
quarantine, bitwise-identical results — holds over the network too.
"""

from repro.runner.transport.client import (
    CoordinatorAuthError,
    RemoteWorkQueue,
    TransportError,
)
from repro.runner.transport.server import (
    DEFAULT_COORDINATOR_PORT,
    CoordinatorServer,
    read_token_file,
)

__all__ = [
    "CoordinatorAuthError",
    "CoordinatorServer",
    "DEFAULT_COORDINATOR_PORT",
    "RemoteWorkQueue",
    "TransportError",
    "read_token_file",
]
