"""The HTTP coordinator: one ``WorkQueue`` served to the whole fleet.

``repro coordinator`` wraps the queue *directory* exactly once — on the
coordinator host — and serves the :class:`~repro.runner.queue.TaskQueue`
contract as small JSON-over-POST endpoints (stdlib
``ThreadingHTTPServer``; no third-party dependencies).  Queue state
stays on disk in the ordinary ``pending/ active/ failed/ results/``
layout, so the coordinator is **stateless across restarts**: kill it
mid-sweep, start a new one on the same directory, and every pending
task, live lease and stored result is still there.  Workers' bounded
retries (see :class:`~repro.runner.transport.client.RemoteWorkQueue`)
ride out the gap.

Endpoints (all under ``/api/v1``; request and response bodies are JSON):

====================  ====  ===================================================
``/stats``            GET   queue counters, lease TTL, live lease owners
``/submit``           POST  ``{payload}`` -> ``{task_id}``
``/claim``            POST  ``{worker}`` -> ``{task_id, payload, lease}`` |
                            ``{task: null}``
``/extend``           POST  ``{task_id, lease}`` heartbeat
``/complete``         POST  ``{task_id, lease[, result]}`` store + release
``/fail``             POST  ``{task_id, lease, error}`` sticky quarantine
``/failed``           POST  ``{task_id}`` -> ``{failed, error}``
``/lease``            POST  ``{task_id}`` -> ``{live}``
``/requeue``          POST  expire dead leases -> ``{requeued}``
``/results/get``      POST  ``{key}`` -> ``{found, result}``
``/results/has``      POST  ``{key}`` -> ``{found}`` (no payload transfer)
``/results/put``      POST  ``{key, result}``
``/results/discard``  POST  ``{key}``
``/results/discard_many``  POST  ``{keys: [...]}``
``/batch/submit``     POST  ``{payloads: [...]}`` -> ``{task_ids: [...]}``
``/batch/poll``       POST  ``{task_ids: [...]}`` ->
                            ``{tasks: {id: {result, failed, error,
                            lease_live}}}``
====================  ====  ===================================================

The ``batch/*`` endpoints exist so a submitter tick over an N-point
sweep costs one round trip instead of ~3N (``results/get`` + ``failed``
+ ``lease`` per task); old clients that never call them keep working
against the per-task endpoints.

The generic HTTP machinery — Bearer-token auth, capped body reads,
transparent gzip on requests and replies, route/counter bookkeeping —
is shared with ``repro serve`` and lives in
:mod:`repro.runner.transport.http_common`.  Queue concurrency needs no
locks: the handler threads hit the same atomic-rename filesystem
protocol that already arbitrates between whole *processes* on a shared
mount.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Optional, Union

from repro.obs.prom import PROM_CONTENT_TYPE, render
from repro.runner.queue import WorkQueue, lease_owner
from repro.runner.transport.http_common import (
    GZIP_MIN_BYTES,
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    JsonApiHandler,
    JsonApiServer,
    RawReply,
    RequestError,
    gunzip_capped,
    read_token_file,
)

__all__ = [
    "CoordinatorServer",
    "CoordinatorHandler",
    "DEFAULT_COORDINATOR_PORT",
    "MAX_BODY_BYTES",
    "GZIP_MIN_BYTES",
    "PROTOCOL_VERSION",
    "MAX_BATCH_POLL_IDS",
    "read_token_file",
]

#: Default coordinator port (``repro coordinator --port``).
DEFAULT_COORDINATOR_PORT = 8642

#: Hard cap on items per batch request (for 64-hex ids: ~640 KB of
#: body).  Clients chunk far below this; the cap stops one request
#: from pinning a handler thread on an unbounded loop.
MAX_BATCH_POLL_IDS = 10_000

#: Backwards-compatible aliases: the PR 5 wire tests (and any external
#: code) reach for these under their pre-factoring names.
_RequestError = RequestError
_gunzip_capped = gunzip_capped

_HEX_DIGITS = set("0123456789abcdef")
_LEASE_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


def _valid_key(key: object) -> str:
    """A task id / result key: exactly the sha256 hex a payload digests to."""
    if (
        not isinstance(key, str)
        or len(key) != 64
        or not set(key) <= _HEX_DIGITS
    ):
        raise RequestError(400, f"invalid task id {key!r}")
    return key


def _valid_lease(lease: object) -> str:
    """A lease nonce as minted by the queue: short, path-safe, no dots."""
    if (
        not isinstance(lease, str)
        or not 0 < len(lease) <= 128
        or not set(lease) <= _LEASE_CHARS
    ):
        raise RequestError(400, f"invalid lease {lease!r}")
    return lease


def _valid_worker(worker: object) -> str:
    """A worker tag safe to embed in lease filenames ('' is anonymous).

    The tag flows into ``_nonce(worker)`` and from there into
    ``active/`` (and possibly ``failed/``) file names, so it gets the
    same character discipline as a lease nonce — a JSON object, a
    path-separator or whitespace is a 400, not a filename.
    """
    if worker is None:
        return ""
    if (
        not isinstance(worker, str)
        or len(worker) > 64
        or not set(worker) <= _LEASE_CHARS
    ):
        raise RequestError(400, f"invalid worker name {worker!r}")
    return worker


class _OwnerThroughput:
    """Per-owner completion/failure accounting with a rolling rate.

    ``record`` is called from handler threads on every ``/complete`` and
    ``/fail``; ``snapshot`` feeds ``/api/v1/stats`` and ``repro top``.
    The rate is completions over a sliding window (not since-start, so a
    worker that died shows 0/s within a minute), tracked with one
    bounded timestamp deque per owner.
    """

    WINDOW_S = 60.0

    def __init__(self):
        self._lock = threading.Lock()
        self._completed: Dict[str, int] = {}  # guarded-by: _lock
        self._failed: Dict[str, int] = {}  # guarded-by: _lock
        self._recent: Dict[str, Deque[float]] = {}  # guarded-by: _lock

    def record(self, owner: str, ok: bool) -> None:
        owner = owner or "anonymous"
        now = time.monotonic()
        with self._lock:
            if ok:
                self._completed[owner] = self._completed.get(owner, 0) + 1
            else:
                self._failed[owner] = self._failed.get(owner, 0) + 1
            recent = self._recent.setdefault(owner, deque())
            recent.append(now)
            cutoff = now - self.WINDOW_S
            while recent and recent[0] < cutoff:
                recent.popleft()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        now = time.monotonic()
        cutoff = now - self.WINDOW_S
        with self._lock:
            owners = set(self._completed) | set(self._failed)
            view: Dict[str, Dict[str, object]] = {}
            for owner in sorted(owners):
                recent = self._recent.get(owner, ())
                in_window = sum(1 for stamp in recent if stamp >= cutoff)
                view[owner] = {
                    "completed": self._completed.get(owner, 0),
                    "failed": self._failed.get(owner, 0),
                    "rate_per_s": in_window / self.WINDOW_S,
                    "window_s": self.WINDOW_S,
                }
            return view


class CoordinatorHandler(JsonApiHandler):
    """Routes one request to the wrapped :class:`WorkQueue`."""

    server: "CoordinatorServer"
    server_version = "repro-coordinator/1"

    # -- queue endpoints ----------------------------------------------------

    def _ep_stats(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        stats = self.server.queue.stats()
        stats["throughput"] = self.server.throughput.snapshot()
        return stats

    def _ep_health(self, body: Dict[str, object]) -> Dict[str, object]:
        """Liveness + readiness: can this coordinator actually serve?

        ``writable`` probes the queue root (or its nearest existing
        parent, before first submit creates it) without mutating
        anything — a read-only mount is the classic silent coordinator
        failure, and a health check that only proves the process is up
        would miss it.
        """
        del body
        queue = self.server.queue
        probe = queue.root
        while not probe.is_dir() and probe.parent != probe:
            probe = probe.parent
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "queue_dir": str(queue.root),
            "writable": os.access(probe, os.W_OK),
            "lease_ttl": queue.lease_ttl,
        }

    def _ep_events(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        return self.server.events.snapshot()

    def _ep_metrics_prom(self, body: Dict[str, object]) -> RawReply:
        del body
        self.server.sync_registry()
        return RawReply(render(self.server.registry), PROM_CONTENT_TYPE)

    def _ep_submit(self, body: Dict[str, object]) -> Dict[str, object]:
        payload = body.get("payload")
        if not isinstance(payload, dict):
            raise RequestError(400, "submit requires a JSON 'payload' object")
        return {"task_id": self.server.queue.submit(payload)}

    def _ep_claim(self, body: Dict[str, object]) -> Dict[str, object]:
        worker = _valid_worker(body.get("worker"))
        task = self.server.queue.claim(worker)
        if task is None:
            return {"task": None}
        owner = lease_owner(task.lease)
        self._log_event(f"claim {task.task_id[:12]} -> {owner}")
        if self.server.note_owner(owner):
            self._event("worker_joined", owner=owner)
        return {
            "task_id": task.task_id,
            "payload": task.payload,
            "lease": task.lease,
        }

    def _ep_extend(self, body: Dict[str, object]) -> Dict[str, object]:
        self.server.queue.extend(self._task(body))
        return {"ok": True}

    def _ep_complete(self, body: Dict[str, object]) -> Dict[str, object]:
        task = self._task(body)
        result = body.get("result")
        if result is not None:
            if not isinstance(result, dict):
                raise RequestError(400, "result must be a JSON object")
            self.server.queue.results.put(task.task_id, result)
        self.server.queue.complete(task)
        owner = lease_owner(task.lease)
        self.server.record_outcome(owner, ok=True)
        self._log_event(f"complete {task.task_id[:12]} by {owner}")
        return {"ok": True}

    def _ep_fail(self, body: Dict[str, object]) -> Dict[str, object]:
        task = self._task(body)
        error = str(body.get("error", ""))
        self.server.queue.fail(task, error=error)
        owner = lease_owner(task.lease)
        self.server.record_outcome(owner, ok=False)
        self._log_event(
            f"FAIL {task.task_id[:12]} by {owner}: quarantined under failed/"
        )
        return {"ok": True}

    def _ep_failed(self, body: Dict[str, object]) -> Dict[str, object]:
        task_id = _valid_key(body.get("task_id"))
        queue = self.server.queue
        if not queue.is_failed(task_id):
            return {"failed": False, "error": ""}
        return {"failed": True, "error": queue.failed_error(task_id)}

    def _ep_lease(self, body: Dict[str, object]) -> Dict[str, object]:
        task_id = _valid_key(body.get("task_id"))
        return {"live": self.server.queue.has_live_lease(task_id)}

    def _ep_requeue(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        requeued = self.server.queue.requeue_expired()
        if requeued:
            self._log_event(f"requeued {requeued} expired lease(s)")
        return {"requeued": requeued}

    def _ep_result_get(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        result = self.server.queue.results.get(key)
        return {"found": result is not None, "result": result}

    def _ep_result_has(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        return {"found": key in self.server.queue.results}

    def _ep_result_put(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        result = body.get("result")
        if not isinstance(result, dict):
            raise RequestError(400, "result must be a JSON object")
        self.server.queue.results.put(key, result)
        return {"ok": True}

    def _ep_result_discard(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        self.server.queue.results.discard(key)
        return {"ok": True}

    def _ep_result_discard_many(
        self, body: Dict[str, object]
    ) -> Dict[str, object]:
        keys = body.get("keys")
        if not isinstance(keys, list):
            raise RequestError(400, "batch discard requires a 'keys' list")
        if len(keys) > MAX_BATCH_POLL_IDS:
            raise RequestError(
                413, f"batch discard capped at {MAX_BATCH_POLL_IDS} keys"
            )
        for key in [_valid_key(key) for key in keys]:
            self.server.queue.results.discard(key)
        return {"ok": True}

    def _ep_batch_submit(self, body: Dict[str, object]) -> Dict[str, object]:
        payloads = body.get("payloads")
        if not isinstance(payloads, list) or not all(
            isinstance(payload, dict) for payload in payloads
        ):
            raise RequestError(
                400, "batch submit requires a 'payloads' list of JSON objects"
            )
        if len(payloads) > MAX_BATCH_POLL_IDS:
            raise RequestError(
                413, f"batch submit capped at {MAX_BATCH_POLL_IDS} payloads"
            )
        task_ids = self.server.queue.submit_many(payloads)
        if task_ids:
            self._log_event(f"batch submit: {len(task_ids)} task(s)")
        return {"task_ids": task_ids}

    def _ep_batch_poll(self, body: Dict[str, object]) -> Dict[str, object]:
        task_ids = body.get("task_ids")
        if not isinstance(task_ids, list):
            raise RequestError(400, "batch poll requires a 'task_ids' list")
        if len(task_ids) > MAX_BATCH_POLL_IDS:
            raise RequestError(
                413, f"batch poll capped at {MAX_BATCH_POLL_IDS} ids"
            )
        # Dedupe after validation: the reply is keyed by id anyway, and
        # a duplicate id re-visiting its (shared) entry after the reply
        # budget ran out would retro-defer a result already counted as
        # delivered — starving the "one result per reply" guarantee.
        keys = list(dict.fromkeys(_valid_key(task_id) for task_id in task_ids))
        tasks = self.server.queue.poll_many(keys)
        # Reply-side budget: inline result payloads up to roughly the
        # request body cap, then defer the rest (``result: null`` looks
        # "not done yet" to the client, which re-polls the undelivered
        # keys next tick — progressive delivery, never a giant reply).
        # At least one result is always delivered, so every tick that
        # has finished tasks makes progress.
        budget = self.server.max_body_bytes
        spent = 0
        exhausted = False
        for key in keys:
            entry = tasks.get(key)
            result = entry.get("result") if entry else None
            if result is None:
                continue
            # Once the budget is spent, defer without even sizing:
            # delivery is in key order, so the sizing work per tick is
            # bounded by the budget, not by the backlog.
            size = 0 if exhausted else len(json.dumps(result))
            if exhausted or (spent and spent + size > budget):
                exhausted = True
                entry["result"] = None
                entry["deferred"] = True
            else:
                spent += size
        return {"tasks": tasks}

    def _task(self, body: Dict[str, object]):
        """The (validated) claim a lease-operation request names."""
        task_id = _valid_key(body.get("task_id"))
        lease = _valid_lease(body.get("lease"))
        return self.server.queue.task_for(task_id, lease)


#: path -> (method, handler).  One flat table: the whole wire protocol.
_ROUTES = {
    "/api/v1/stats": ("GET", CoordinatorHandler._ep_stats),
    "/api/v1/health": ("GET", CoordinatorHandler._ep_health),
    "/api/v1/events": ("GET", CoordinatorHandler._ep_events),
    "/metrics.prom": ("GET", CoordinatorHandler._ep_metrics_prom),
    "/api/v1/submit": ("POST", CoordinatorHandler._ep_submit),
    "/api/v1/claim": ("POST", CoordinatorHandler._ep_claim),
    "/api/v1/extend": ("POST", CoordinatorHandler._ep_extend),
    "/api/v1/complete": ("POST", CoordinatorHandler._ep_complete),
    "/api/v1/fail": ("POST", CoordinatorHandler._ep_fail),
    "/api/v1/failed": ("POST", CoordinatorHandler._ep_failed),
    "/api/v1/lease": ("POST", CoordinatorHandler._ep_lease),
    "/api/v1/requeue": ("POST", CoordinatorHandler._ep_requeue),
    "/api/v1/results/get": ("POST", CoordinatorHandler._ep_result_get),
    "/api/v1/results/has": ("POST", CoordinatorHandler._ep_result_has),
    "/api/v1/results/put": ("POST", CoordinatorHandler._ep_result_put),
    "/api/v1/results/discard": ("POST", CoordinatorHandler._ep_result_discard),
    "/api/v1/results/discard_many": (
        "POST",
        CoordinatorHandler._ep_result_discard_many,
    ),
    "/api/v1/batch/submit": ("POST", CoordinatorHandler._ep_batch_submit),
    "/api/v1/batch/poll": ("POST", CoordinatorHandler._ep_batch_poll),
}


class CoordinatorServer(JsonApiServer):
    """A :class:`WorkQueue` exposed over HTTP to any host that can connect.

    Args:
        queue: the wrapped :class:`WorkQueue` (or a queue directory).
        host / port: bind address; port ``0`` picks an ephemeral port
            (`server_port` / `url` report the actual one).
        token: shared secret; ``None`` serves unauthenticated (loopback
            testing).  Production deployments should always set one —
            the queue evaluates arbitrary submitted payloads.
        quiet: suppress queue-event log lines (tests).
        max_body_bytes: per-request body cap, applied to the
            decompressed size for gzip requests (default
            :data:`MAX_BODY_BYTES`; tests shrink it).
    """

    log_name = "coordinator"

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        quiet: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue)
        self.queue = queue
        self.throughput = _OwnerThroughput()
        self._owners_seen: set = set()  # guarded-by: _owners_lock
        self._owners_lock = threading.Lock()
        super().__init__(
            host,
            port,
            CoordinatorHandler,
            _ROUTES,
            token=token,
            quiet=quiet,
            max_body_bytes=max_body_bytes,
        )
        # The queue emits quarantine/lease-expiry events into this
        # server's ring so they surface on /api/v1/events.
        self.queue.events = self.events
        self._completed_counter = self.registry.counter(
            "repro_tasks_completed_total",
            "Tasks completed, by worker owner.",
            label_names=("owner",),
        )
        self._failed_counter = self.registry.counter(
            "repro_tasks_failed_total",
            "Tasks quarantined, by worker owner.",
            label_names=("owner",),
        )

    def note_owner(self, owner: str) -> bool:
        """Record ``owner``; True the first time it is seen (a join)."""
        with self._owners_lock:
            if owner in self._owners_seen:
                return False
            self._owners_seen.add(owner)
            return True

    def record_outcome(self, owner: str, ok: bool) -> None:
        """One task finished (or was quarantined) by ``owner``."""
        self.throughput.record(owner, ok)
        counter = self._completed_counter if ok else self._failed_counter
        counter.inc(labels=(owner or "anonymous",))

    def sync_registry(self) -> None:
        """Set the queue-depth gauges from live queue state for a scrape."""
        stats = self.queue.stats()
        for name, help_text, value in (
            ("repro_queue_pending", "Tasks waiting to be claimed.",
             stats["pending"]),
            ("repro_queue_active", "Tasks under a live or expired lease.",
             stats["active"]),
            ("repro_queue_failed", "Tasks quarantined under failed/.",
             stats["failed"]),
            ("repro_queue_lease_ttl_seconds", "Configured lease TTL.",
             stats["lease_ttl"]),
            ("repro_queue_owners", "Distinct owners holding live leases.",
             len(stats["owners"])),
            ("repro_uptime_seconds", "Seconds since the server came up.",
             time.monotonic() - self.started_at),
        ):
            self.registry.gauge(name, help_text).set(value)
