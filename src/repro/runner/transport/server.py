"""The HTTP coordinator: one ``WorkQueue`` served to the whole fleet.

``repro coordinator`` wraps the queue *directory* exactly once — on the
coordinator host — and serves the :class:`~repro.runner.queue.TaskQueue`
contract as small JSON-over-POST endpoints (stdlib
``ThreadingHTTPServer``; no third-party dependencies).  Queue state
stays on disk in the ordinary ``pending/ active/ failed/ results/``
layout, so the coordinator is **stateless across restarts**: kill it
mid-sweep, start a new one on the same directory, and every pending
task, live lease and stored result is still there.  Workers' bounded
retries (see :class:`~repro.runner.transport.client.RemoteWorkQueue`)
ride out the gap.

Endpoints (all under ``/api/v1``; request and response bodies are JSON):

====================  ====  ===================================================
``/stats``            GET   queue counters, lease TTL, live lease owners
``/submit``           POST  ``{payload}`` -> ``{task_id}``
``/claim``            POST  ``{worker}`` -> ``{task_id, payload, lease}`` |
                            ``{task: null}``
``/extend``           POST  ``{task_id, lease}`` heartbeat
``/complete``         POST  ``{task_id, lease[, result]}`` store + release
``/fail``             POST  ``{task_id, lease, error}`` sticky quarantine
``/failed``           POST  ``{task_id}`` -> ``{failed, error}``
``/lease``            POST  ``{task_id}`` -> ``{live}``
``/requeue``          POST  expire dead leases -> ``{requeued}``
``/results/get``      POST  ``{key}`` -> ``{found, result}``
``/results/has``      POST  ``{key}`` -> ``{found}`` (no payload transfer)
``/results/put``      POST  ``{key, result}``
``/results/discard``  POST  ``{key}``
``/results/discard_many``  POST  ``{keys: [...]}``
``/batch/submit``     POST  ``{payloads: [...]}`` -> ``{task_ids: [...]}``
``/batch/poll``       POST  ``{task_ids: [...]}`` ->
                            ``{tasks: {id: {result, failed, error,
                            lease_live}}}``
====================  ====  ===================================================

The ``batch/*`` endpoints exist so a submitter tick over an N-point
sweep costs one round trip instead of ~3N (``results/get`` + ``failed``
+ ``lease`` per task); old clients that never call them keep working
against the per-task endpoints.

Compression: requests may arrive with ``Content-Encoding: gzip`` (the
body is transparently decompressed, with :data:`MAX_BODY_BYTES`
enforced on the *decompressed* size so a tiny bomb cannot balloon in
memory), and replies to clients that sent ``Accept-Encoding: gzip``
are gzip-compressed above :data:`GZIP_MIN_BYTES`.  Every reply carries
``X-Repro-Protocol: 2`` so new clients know both facilities exist;
old clients ignore the header and speak identity encoding.

Authentication is a shared token (``--token-file``): every request must
carry ``Authorization: Bearer <token>``; mismatches get 401 without
touching the queue.  Concurrency needs no locks — the handler threads
hit the same atomic-rename filesystem protocol that already arbitrates
between whole *processes* on a shared mount.
"""

from __future__ import annotations

import gzip
import hmac
import json
import sys
import threading
import zlib
from collections import Counter
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Union

from repro.runner.queue import WorkQueue, lease_owner

#: Default coordinator port (``repro coordinator --port``).
DEFAULT_COORDINATOR_PORT = 8642

#: Requests larger than this are rejected outright (a result payload
#: for a bench-scale network is ~100 KB; 32 MB is absurd headroom).
#: For gzip requests the limit applies to the *decompressed* size.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Replies smaller than this are sent identity-encoded even to gzip
#: clients: below a packet's worth of JSON the compression round trip
#: costs more than the bytes it saves.
GZIP_MIN_BYTES = 1024

#: ``X-Repro-Protocol`` value: 2 = batch endpoints + gzip both ways.
PROTOCOL_VERSION = 2

#: Hard cap on items per batch request (for 64-hex ids: ~640 KB of
#: body).  Clients chunk far below this; the cap stops one request
#: from pinning a handler thread on an unbounded loop.
MAX_BATCH_POLL_IDS = 10_000

_HEX_DIGITS = set("0123456789abcdef")
_LEASE_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


def read_token_file(path: Union[str, Path]) -> str:
    """The shared secret stored at ``path`` (stripped; must be non-empty)."""
    token = Path(path).read_text(encoding="utf-8").strip()
    if not token:
        raise ValueError(f"token file {path} is empty")
    return token


class _RequestError(Exception):
    """An HTTP error response to send instead of a result body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _valid_key(key: object) -> str:
    """A task id / result key: exactly the sha256 hex a payload digests to."""
    if (
        not isinstance(key, str)
        or len(key) != 64
        or not set(key) <= _HEX_DIGITS
    ):
        raise _RequestError(400, f"invalid task id {key!r}")
    return key


def _valid_lease(lease: object) -> str:
    """A lease nonce as minted by the queue: short, path-safe, no dots."""
    if (
        not isinstance(lease, str)
        or not 0 < len(lease) <= 128
        or not set(lease) <= _LEASE_CHARS
    ):
        raise _RequestError(400, f"invalid lease {lease!r}")
    return lease


def _valid_worker(worker: object) -> str:
    """A worker tag safe to embed in lease filenames ('' is anonymous).

    The tag flows into ``_nonce(worker)`` and from there into
    ``active/`` (and possibly ``failed/``) file names, so it gets the
    same character discipline as a lease nonce — a JSON object, a
    path-separator or whitespace is a 400, not a filename.
    """
    if worker is None:
        return ""
    if (
        not isinstance(worker, str)
        or len(worker) > 64
        or not set(worker) <= _LEASE_CHARS
    ):
        raise _RequestError(400, f"invalid worker name {worker!r}")
    return worker


def _gunzip_capped(raw: bytes, limit: int) -> bytes:
    """Decompress a gzip body, refusing to inflate past ``limit`` bytes.

    Streaming decompression with ``max_length`` means a compression
    bomb is cut off at the cap instead of ballooning in memory first.
    """
    decompressor = zlib.decompressobj(16 + zlib.MAX_WBITS)
    try:
        body = decompressor.decompress(raw, limit + 1)
    except zlib.error as exc:
        raise _RequestError(400, f"request body is not valid gzip: {exc}")
    if len(body) > limit or decompressor.unconsumed_tail:
        raise _RequestError(
            413, f"decompressed body exceeds {limit} bytes"
        )
    if not decompressor.eof:
        raise _RequestError(400, "truncated gzip body")
    return body


class CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes one request to the wrapped :class:`WorkQueue`."""

    server: "CoordinatorServer"
    server_version = "repro-coordinator/1"
    protocol_version = "HTTP/1.1"  # keep-alive: workers poll in a loop

    # -- plumbing -----------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        if self.path in self.server.routes:
            # Known endpoints only: the counter is keyed by client-sent
            # paths, and counting arbitrary scanned URLs would grow it
            # without bound over a coordinator's lifetime.
            self.server.count_request(self.path)
        try:
            if not self._authorized():
                raise _RequestError(401, "missing or bad bearer token")
            route = self.server.routes.get(self.path)
            if route is None:
                raise _RequestError(404, f"unknown endpoint {self.path}")
            expected_method, handler = route
            if method != expected_method:
                raise _RequestError(405, f"{self.path} requires {expected_method}")
            body = self._read_body() if method == "POST" else {}
            self._reply(200, handler(self, body))
        except _RequestError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except Exception as exc:  # never let a handler kill the server
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _authorized(self) -> bool:
        token = self.server.token
        if token is None:
            return True
        header = self.headers.get("Authorization", "")
        return hmac.compare_digest(header, f"Bearer {token}")

    def _read_body(self) -> Dict[str, object]:
        header = self.headers.get("Content-Length")
        if header is None:
            # Without a length we cannot know where this request's body
            # ends on a keep-alive socket; demand one instead of
            # guessing (411 Length Required).
            raise _RequestError(411, "POST requires a Content-Length header")
        try:
            length = int(header)
        except (TypeError, ValueError):
            raise _RequestError(
                400, f"invalid Content-Length {header!r}"
            )
        if length < 0:
            # rfile.read(-1) would block reading until EOF — on a
            # keep-alive socket, forever.  Never trust the header.
            raise _RequestError(
                400, f"invalid Content-Length {header!r}"
            )
        if length > self.server.max_body_bytes:
            raise _RequestError(413, f"body of {length} bytes is too large")
        raw = self.rfile.read(length) if length else b""
        encoding = self.headers.get("Content-Encoding", "identity").lower()
        if encoding == "gzip":
            raw = _gunzip_capped(raw, self.server.max_body_bytes)
        elif encoding not in ("", "identity"):
            raise _RequestError(
                415, f"unsupported Content-Encoding {encoding!r}"
            )
        try:
            body = json.loads(raw or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _RequestError(400, f"request body is not JSON: {exc}")
        if not isinstance(body, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return body

    def _accepts_gzip(self) -> bool:
        """Whether the client accepts a gzip reply (q=0 is a refusal)."""
        for token in self.headers.get("Accept-Encoding", "").split(","):
            coding, _, params = token.partition(";")
            if coding.strip().lower() != "gzip":
                continue
            name, _, value = params.partition("=")
            if name.strip().lower() == "q":
                try:
                    return float(value.strip()) > 0
                except ValueError:
                    return False
            return True
        return False

    def _reply(self, status: int, payload: Dict[str, object]) -> None:
        data = json.dumps(payload).encode("utf-8")
        content_encoding = None
        if (
            status < 400
            and len(data) >= GZIP_MIN_BYTES
            and self._accepts_gzip()
        ):
            data = gzip.compress(data, compresslevel=5)
            content_encoding = "gzip"
        if status >= 400:
            # Error replies may be sent before the request body was
            # read (auth failures, unknown endpoints); on a keep-alive
            # connection the unread bytes would be parsed as the next
            # request line, desyncing the socket — close it instead.
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Repro-Protocol", str(PROTOCOL_VERSION))
        if content_encoding:
            self.send_header("Content-Encoding", content_encoding)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        # Per-request access logging is noise at worker poll rates; the
        # queue-event log lines below are the useful signal.
        pass

    def _log_event(self, message: str) -> None:
        self.server.log(message)

    # -- queue endpoints ----------------------------------------------------

    def _ep_stats(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        return self.server.queue.stats()

    def _ep_submit(self, body: Dict[str, object]) -> Dict[str, object]:
        payload = body.get("payload")
        if not isinstance(payload, dict):
            raise _RequestError(400, "submit requires a JSON 'payload' object")
        return {"task_id": self.server.queue.submit(payload)}

    def _ep_claim(self, body: Dict[str, object]) -> Dict[str, object]:
        worker = _valid_worker(body.get("worker"))
        task = self.server.queue.claim(worker)
        if task is None:
            return {"task": None}
        self._log_event(
            f"claim {task.task_id[:12]} -> {lease_owner(task.lease)}"
        )
        return {
            "task_id": task.task_id,
            "payload": task.payload,
            "lease": task.lease,
        }

    def _ep_extend(self, body: Dict[str, object]) -> Dict[str, object]:
        self.server.queue.extend(self._task(body))
        return {"ok": True}

    def _ep_complete(self, body: Dict[str, object]) -> Dict[str, object]:
        task = self._task(body)
        result = body.get("result")
        if result is not None:
            if not isinstance(result, dict):
                raise _RequestError(400, "result must be a JSON object")
            self.server.queue.results.put(task.task_id, result)
        self.server.queue.complete(task)
        self._log_event(
            f"complete {task.task_id[:12]} by {lease_owner(task.lease)}"
        )
        return {"ok": True}

    def _ep_fail(self, body: Dict[str, object]) -> Dict[str, object]:
        task = self._task(body)
        error = str(body.get("error", ""))
        self.server.queue.fail(task, error=error)
        self._log_event(
            f"FAIL {task.task_id[:12]} by {lease_owner(task.lease)}: "
            f"quarantined under failed/"
        )
        return {"ok": True}

    def _ep_failed(self, body: Dict[str, object]) -> Dict[str, object]:
        task_id = _valid_key(body.get("task_id"))
        queue = self.server.queue
        if not queue.is_failed(task_id):
            return {"failed": False, "error": ""}
        return {"failed": True, "error": queue.failed_error(task_id)}

    def _ep_lease(self, body: Dict[str, object]) -> Dict[str, object]:
        task_id = _valid_key(body.get("task_id"))
        return {"live": self.server.queue.has_live_lease(task_id)}

    def _ep_requeue(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        requeued = self.server.queue.requeue_expired()
        if requeued:
            self._log_event(f"requeued {requeued} expired lease(s)")
        return {"requeued": requeued}

    def _ep_result_get(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        result = self.server.queue.results.get(key)
        return {"found": result is not None, "result": result}

    def _ep_result_has(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        return {"found": key in self.server.queue.results}

    def _ep_result_put(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        result = body.get("result")
        if not isinstance(result, dict):
            raise _RequestError(400, "result must be a JSON object")
        self.server.queue.results.put(key, result)
        return {"ok": True}

    def _ep_result_discard(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        self.server.queue.results.discard(key)
        return {"ok": True}

    def _ep_result_discard_many(
        self, body: Dict[str, object]
    ) -> Dict[str, object]:
        keys = body.get("keys")
        if not isinstance(keys, list):
            raise _RequestError(
                400, "batch discard requires a 'keys' list"
            )
        if len(keys) > MAX_BATCH_POLL_IDS:
            raise _RequestError(
                413, f"batch discard capped at {MAX_BATCH_POLL_IDS} keys"
            )
        for key in [_valid_key(key) for key in keys]:
            self.server.queue.results.discard(key)
        return {"ok": True}

    def _ep_batch_submit(self, body: Dict[str, object]) -> Dict[str, object]:
        payloads = body.get("payloads")
        if not isinstance(payloads, list) or not all(
            isinstance(payload, dict) for payload in payloads
        ):
            raise _RequestError(
                400, "batch submit requires a 'payloads' list of JSON objects"
            )
        if len(payloads) > MAX_BATCH_POLL_IDS:
            raise _RequestError(
                413, f"batch submit capped at {MAX_BATCH_POLL_IDS} payloads"
            )
        task_ids = self.server.queue.submit_many(payloads)
        if task_ids:
            self._log_event(f"batch submit: {len(task_ids)} task(s)")
        return {"task_ids": task_ids}

    def _ep_batch_poll(self, body: Dict[str, object]) -> Dict[str, object]:
        task_ids = body.get("task_ids")
        if not isinstance(task_ids, list):
            raise _RequestError(
                400, "batch poll requires a 'task_ids' list"
            )
        if len(task_ids) > MAX_BATCH_POLL_IDS:
            raise _RequestError(
                413, f"batch poll capped at {MAX_BATCH_POLL_IDS} ids"
            )
        # Dedupe after validation: the reply is keyed by id anyway, and
        # a duplicate id re-visiting its (shared) entry after the reply
        # budget ran out would retro-defer a result already counted as
        # delivered — starving the "one result per reply" guarantee.
        keys = list(dict.fromkeys(_valid_key(task_id) for task_id in task_ids))
        tasks = self.server.queue.poll_many(keys)
        # Reply-side budget: inline result payloads up to roughly the
        # request body cap, then defer the rest (``result: null`` looks
        # "not done yet" to the client, which re-polls the undelivered
        # keys next tick — progressive delivery, never a giant reply).
        # At least one result is always delivered, so every tick that
        # has finished tasks makes progress.
        budget = self.server.max_body_bytes
        spent = 0
        exhausted = False
        for key in keys:
            entry = tasks.get(key)
            result = entry.get("result") if entry else None
            if result is None:
                continue
            # Once the budget is spent, defer without even sizing:
            # delivery is in key order, so the sizing work per tick is
            # bounded by the budget, not by the backlog.
            size = 0 if exhausted else len(json.dumps(result))
            if exhausted or (spent and spent + size > budget):
                exhausted = True
                entry["result"] = None
                entry["deferred"] = True
            else:
                spent += size
        return {"tasks": tasks}

    def _task(self, body: Dict[str, object]):
        """The (validated) claim a lease-operation request names."""
        task_id = _valid_key(body.get("task_id"))
        lease = _valid_lease(body.get("lease"))
        return self.server.queue.task_for(task_id, lease)


#: path -> (method, handler).  One flat table: the whole wire protocol.
_ROUTES = {
    "/api/v1/stats": ("GET", CoordinatorHandler._ep_stats),
    "/api/v1/submit": ("POST", CoordinatorHandler._ep_submit),
    "/api/v1/claim": ("POST", CoordinatorHandler._ep_claim),
    "/api/v1/extend": ("POST", CoordinatorHandler._ep_extend),
    "/api/v1/complete": ("POST", CoordinatorHandler._ep_complete),
    "/api/v1/fail": ("POST", CoordinatorHandler._ep_fail),
    "/api/v1/failed": ("POST", CoordinatorHandler._ep_failed),
    "/api/v1/lease": ("POST", CoordinatorHandler._ep_lease),
    "/api/v1/requeue": ("POST", CoordinatorHandler._ep_requeue),
    "/api/v1/results/get": ("POST", CoordinatorHandler._ep_result_get),
    "/api/v1/results/has": ("POST", CoordinatorHandler._ep_result_has),
    "/api/v1/results/put": ("POST", CoordinatorHandler._ep_result_put),
    "/api/v1/results/discard": ("POST", CoordinatorHandler._ep_result_discard),
    "/api/v1/results/discard_many": (
        "POST",
        CoordinatorHandler._ep_result_discard_many,
    ),
    "/api/v1/batch/submit": ("POST", CoordinatorHandler._ep_batch_submit),
    "/api/v1/batch/poll": ("POST", CoordinatorHandler._ep_batch_poll),
}


class CoordinatorServer(ThreadingHTTPServer):
    """A :class:`WorkQueue` exposed over HTTP to any host that can connect.

    Args:
        queue: the wrapped :class:`WorkQueue` (or a queue directory).
        host / port: bind address; port ``0`` picks an ephemeral port
            (`server_port` / `url` report the actual one).
        token: shared secret; ``None`` serves unauthenticated (loopback
            testing).  Production deployments should always set one —
            the queue evaluates arbitrary submitted payloads.
        quiet: suppress queue-event log lines (tests).
        max_body_bytes: per-request body cap, applied to the
            decompressed size for gzip requests (default
            :data:`MAX_BODY_BYTES`; tests shrink it).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        quiet: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue)
        self.queue = queue
        self.token = token
        self.quiet = quiet
        self.max_body_bytes = int(max_body_bytes)
        #: The live route table.  An instance copy of the module-level
        #: :data:`_ROUTES` so tests can delete entries to impersonate an
        #: older coordinator (fallback-path coverage).
        self.routes = dict(_ROUTES)
        #: Requests served, by path — how the wire tests prove a poll
        #: tick costs one round trip instead of one per task.
        self.request_counts: Counter = Counter()
        self._log_lock = threading.Lock()
        self._count_lock = threading.Lock()
        super().__init__((host, port), CoordinatorHandler)

    def count_request(self, path: str) -> None:
        with self._count_lock:
            self.request_counts[path] += 1

    @property
    def url(self) -> str:
        """The base URL workers should be pointed at."""
        host, port = self.server_address[:2]
        if host == "0.0.0.0":  # bound everywhere; loopback always works
            host = "127.0.0.1"
        return f"http://{host}:{port}"

    def log(self, message: str) -> None:
        if self.quiet:
            return
        with self._log_lock:
            print(f"[coordinator] {message}", file=sys.stderr, flush=True)

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread (tests, embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        """Shut down the serve loop and release the listening socket."""
        self.shutdown()
        self.server_close()
