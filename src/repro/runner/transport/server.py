"""The HTTP coordinator: one ``WorkQueue`` served to the whole fleet.

``repro coordinator`` wraps the queue *directory* exactly once — on the
coordinator host — and serves the :class:`~repro.runner.queue.TaskQueue`
contract as small JSON-over-POST endpoints (stdlib
``ThreadingHTTPServer``; no third-party dependencies).  Queue state
stays on disk in the ordinary ``pending/ active/ failed/ results/``
layout, so the coordinator is **stateless across restarts**: kill it
mid-sweep, start a new one on the same directory, and every pending
task, live lease and stored result is still there.  Workers' bounded
retries (see :class:`~repro.runner.transport.client.RemoteWorkQueue`)
ride out the gap.

Endpoints (all under ``/api/v1``; request and response bodies are JSON):

====================  ====  ===================================================
``/stats``            GET   queue counters, lease TTL, live lease owners
``/submit``           POST  ``{payload}`` -> ``{task_id}``
``/claim``            POST  ``{worker}`` -> ``{task_id, payload, lease}`` |
                            ``{task: null}``
``/extend``           POST  ``{task_id, lease}`` heartbeat
``/complete``         POST  ``{task_id, lease[, result]}`` store + release
``/fail``             POST  ``{task_id, lease, error}`` sticky quarantine
``/failed``           POST  ``{task_id}`` -> ``{failed, error}``
``/lease``            POST  ``{task_id}`` -> ``{live}``
``/requeue``          POST  expire dead leases -> ``{requeued}``
``/results/get``      POST  ``{key}`` -> ``{found, result}``
``/results/put``      POST  ``{key, result}``
``/results/discard``  POST  ``{key}``
====================  ====  ===================================================

Authentication is a shared token (``--token-file``): every request must
carry ``Authorization: Bearer <token>``; mismatches get 401 without
touching the queue.  Concurrency needs no locks — the handler threads
hit the same atomic-rename filesystem protocol that already arbitrates
between whole *processes* on a shared mount.
"""

from __future__ import annotations

import hmac
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Union

from repro.runner.queue import WorkQueue, lease_owner

#: Default coordinator port (``repro coordinator --port``).
DEFAULT_COORDINATOR_PORT = 8642

#: Requests larger than this are rejected outright (a result payload
#: for a bench-scale network is ~100 KB; 32 MB is absurd headroom).
MAX_BODY_BYTES = 32 * 1024 * 1024

_HEX_DIGITS = set("0123456789abcdef")
_LEASE_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


def read_token_file(path: Union[str, Path]) -> str:
    """The shared secret stored at ``path`` (stripped; must be non-empty)."""
    token = Path(path).read_text(encoding="utf-8").strip()
    if not token:
        raise ValueError(f"token file {path} is empty")
    return token


class _RequestError(Exception):
    """An HTTP error response to send instead of a result body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _valid_key(key: object) -> str:
    """A task id / result key: exactly the sha256 hex a payload digests to."""
    if (
        not isinstance(key, str)
        or len(key) != 64
        or not set(key) <= _HEX_DIGITS
    ):
        raise _RequestError(400, f"invalid task id {key!r}")
    return key


def _valid_lease(lease: object) -> str:
    """A lease nonce as minted by the queue: short, path-safe, no dots."""
    if (
        not isinstance(lease, str)
        or not 0 < len(lease) <= 128
        or not set(lease) <= _LEASE_CHARS
    ):
        raise _RequestError(400, f"invalid lease {lease!r}")
    return lease


class CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes one request to the wrapped :class:`WorkQueue`."""

    server: "CoordinatorServer"
    server_version = "repro-coordinator/1"
    protocol_version = "HTTP/1.1"  # keep-alive: workers poll in a loop

    # -- plumbing -----------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            if not self._authorized():
                raise _RequestError(401, "missing or bad bearer token")
            route = _ROUTES.get(self.path)
            if route is None:
                raise _RequestError(404, f"unknown endpoint {self.path}")
            expected_method, handler = route
            if method != expected_method:
                raise _RequestError(405, f"{self.path} requires {expected_method}")
            body = self._read_body() if method == "POST" else {}
            self._reply(200, handler(self, body))
        except _RequestError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except Exception as exc:  # never let a handler kill the server
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _authorized(self) -> bool:
        token = self.server.token
        if token is None:
            return True
        header = self.headers.get("Authorization", "")
        return hmac.compare_digest(header, f"Bearer {token}")

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _RequestError(413, f"body of {length} bytes is too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _RequestError(400, f"request body is not JSON: {exc}")
        if not isinstance(body, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return body

    def _reply(self, status: int, payload: Dict[str, object]) -> None:
        data = json.dumps(payload).encode("utf-8")
        if status >= 400:
            # Error replies may be sent before the request body was
            # read (auth failures, unknown endpoints); on a keep-alive
            # connection the unread bytes would be parsed as the next
            # request line, desyncing the socket — close it instead.
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        # Per-request access logging is noise at worker poll rates; the
        # queue-event log lines below are the useful signal.
        pass

    def _log_event(self, message: str) -> None:
        self.server.log(message)

    # -- queue endpoints ----------------------------------------------------

    def _ep_stats(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        return self.server.queue.stats()

    def _ep_submit(self, body: Dict[str, object]) -> Dict[str, object]:
        payload = body.get("payload")
        if not isinstance(payload, dict):
            raise _RequestError(400, "submit requires a JSON 'payload' object")
        return {"task_id": self.server.queue.submit(payload)}

    def _ep_claim(self, body: Dict[str, object]) -> Dict[str, object]:
        worker = str(body.get("worker", ""))
        task = self.server.queue.claim(worker)
        if task is None:
            return {"task": None}
        self._log_event(
            f"claim {task.task_id[:12]} -> {lease_owner(task.lease)}"
        )
        return {
            "task_id": task.task_id,
            "payload": task.payload,
            "lease": task.lease,
        }

    def _ep_extend(self, body: Dict[str, object]) -> Dict[str, object]:
        self.server.queue.extend(self._task(body))
        return {"ok": True}

    def _ep_complete(self, body: Dict[str, object]) -> Dict[str, object]:
        task = self._task(body)
        result = body.get("result")
        if result is not None:
            if not isinstance(result, dict):
                raise _RequestError(400, "result must be a JSON object")
            self.server.queue.results.put(task.task_id, result)
        self.server.queue.complete(task)
        self._log_event(
            f"complete {task.task_id[:12]} by {lease_owner(task.lease)}"
        )
        return {"ok": True}

    def _ep_fail(self, body: Dict[str, object]) -> Dict[str, object]:
        task = self._task(body)
        error = str(body.get("error", ""))
        self.server.queue.fail(task, error=error)
        self._log_event(
            f"FAIL {task.task_id[:12]} by {lease_owner(task.lease)}: "
            f"quarantined under failed/"
        )
        return {"ok": True}

    def _ep_failed(self, body: Dict[str, object]) -> Dict[str, object]:
        task_id = _valid_key(body.get("task_id"))
        queue = self.server.queue
        if not queue.is_failed(task_id):
            return {"failed": False, "error": ""}
        return {"failed": True, "error": queue.failed_error(task_id)}

    def _ep_lease(self, body: Dict[str, object]) -> Dict[str, object]:
        task_id = _valid_key(body.get("task_id"))
        return {"live": self.server.queue.has_live_lease(task_id)}

    def _ep_requeue(self, body: Dict[str, object]) -> Dict[str, object]:
        del body
        requeued = self.server.queue.requeue_expired()
        if requeued:
            self._log_event(f"requeued {requeued} expired lease(s)")
        return {"requeued": requeued}

    def _ep_result_get(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        result = self.server.queue.results.get(key)
        return {"found": result is not None, "result": result}

    def _ep_result_put(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        result = body.get("result")
        if not isinstance(result, dict):
            raise _RequestError(400, "result must be a JSON object")
        self.server.queue.results.put(key, result)
        return {"ok": True}

    def _ep_result_discard(self, body: Dict[str, object]) -> Dict[str, object]:
        key = _valid_key(body.get("key"))
        self.server.queue.results.discard(key)
        return {"ok": True}

    def _task(self, body: Dict[str, object]):
        """The (validated) claim a lease-operation request names."""
        task_id = _valid_key(body.get("task_id"))
        lease = _valid_lease(body.get("lease"))
        return self.server.queue.task_for(task_id, lease)


#: path -> (method, handler).  One flat table: the whole wire protocol.
_ROUTES = {
    "/api/v1/stats": ("GET", CoordinatorHandler._ep_stats),
    "/api/v1/submit": ("POST", CoordinatorHandler._ep_submit),
    "/api/v1/claim": ("POST", CoordinatorHandler._ep_claim),
    "/api/v1/extend": ("POST", CoordinatorHandler._ep_extend),
    "/api/v1/complete": ("POST", CoordinatorHandler._ep_complete),
    "/api/v1/fail": ("POST", CoordinatorHandler._ep_fail),
    "/api/v1/failed": ("POST", CoordinatorHandler._ep_failed),
    "/api/v1/lease": ("POST", CoordinatorHandler._ep_lease),
    "/api/v1/requeue": ("POST", CoordinatorHandler._ep_requeue),
    "/api/v1/results/get": ("POST", CoordinatorHandler._ep_result_get),
    "/api/v1/results/put": ("POST", CoordinatorHandler._ep_result_put),
    "/api/v1/results/discard": ("POST", CoordinatorHandler._ep_result_discard),
}


class CoordinatorServer(ThreadingHTTPServer):
    """A :class:`WorkQueue` exposed over HTTP to any host that can connect.

    Args:
        queue: the wrapped :class:`WorkQueue` (or a queue directory).
        host / port: bind address; port ``0`` picks an ephemeral port
            (`server_port` / `url` report the actual one).
        token: shared secret; ``None`` serves unauthenticated (loopback
            testing).  Production deployments should always set one —
            the queue evaluates arbitrary submitted payloads.
        quiet: suppress queue-event log lines (tests).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        queue: Union[WorkQueue, str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        quiet: bool = False,
    ):
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue)
        self.queue = queue
        self.token = token
        self.quiet = quiet
        self._log_lock = threading.Lock()
        super().__init__((host, port), CoordinatorHandler)

    @property
    def url(self) -> str:
        """The base URL workers should be pointed at."""
        host, port = self.server_address[:2]
        if host == "0.0.0.0":  # bound everywhere; loopback always works
            host = "127.0.0.1"
        return f"http://{host}:{port}"

    def log(self, message: str) -> None:
        if self.quiet:
            return
        with self._log_lock:
            print(f"[coordinator] {message}", file=sys.stderr, flush=True)

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a daemon thread (tests, embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        """Shut down the serve loop and release the listening socket."""
        self.shutdown()
        self.server_close()
