"""Payload evaluation: the single execution path shared by all backends.

Every execution backend — serial in-process, worker processes, queue
workers on other hosts — funnels through :func:`evaluate_point`: rebuild
the benchmark from the payload's ``(network, scale, seed)`` identity
(deterministic zoo seeding, cached per process), evaluate the named
point or shard, and return the JSON-safe result payload that the
content-addressed cache stores.  Because there is exactly one evaluation
path, cached, serial, process-parallel, sharded and multi-host results
can never drift apart.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.models.benchmark import Benchmark, MemoizedResult
from repro.models.zoo import load_benchmark
from repro.runner.job import (
    job_from_payload,
    result_to_payload,
    scheme_from_payload,
)


def evaluate_payload(
    payload: Mapping[str, object], benchmark: Optional[Benchmark] = None
) -> MemoizedResult:
    """Evaluate any point or shard payload, optionally on a live benchmark.

    The payload's ``shard_index``/``shard_count`` keys (present only on
    ``eval_shard`` payloads) select the shard; whole points evaluate the
    full split.
    """
    if benchmark is None:
        benchmark = load_benchmark(
            str(payload["network"]),
            scale=str(payload["scale"]),
            seed=int(payload["seed"]),
            trained=False,
        )
    shard = None
    if "shard_index" in payload:
        shard = (int(payload["shard_index"]), int(payload["shard_count"]))
    return benchmark.evaluate_memoized(
        scheme_from_payload(payload),
        calibration=bool(payload["calibration"]),
        shard=shard,
    )


def evaluate_point(payload: Mapping[str, object]) -> Dict[str, object]:
    """Worker entry point: evaluate one point or shard from its payload.

    A pure function of the payload — the zoo rebuilds and (lazily)
    trains the benchmark from ``(network, scale, seed)`` with fully
    seeded numpy, so any process on any host computes the same result.
    Returns the JSON-safe result payload (what the cache stores); shard
    payloads (``shard_index``/``shard_count`` present) yield partials
    carrying their metric-accumulator state and ``base_quality``.
    """
    return result_to_payload(evaluate_payload(payload))


#: Alias for readability at sharded call sites: the payload's own
#: ``shard_index``/``shard_count`` fields select the shard, so point
#: and shard evaluations share one dispatch path.
evaluate_shard = evaluate_point


def evaluate_task(payload: Mapping[str, object]) -> Dict[str, object]:
    """Validate, then evaluate, one *queue* task payload.

    Queue payloads arrive from other processes — possibly other hosts
    running other code versions — so unlike the in-process paths they
    are validated first: :func:`~repro.runner.job.job_from_payload`
    rejects unknown job kinds and payloads written under a different
    ``CACHE_VERSION`` (evaluating those would store a result under a
    content-address that lies about its semantics).  The raised
    ``ValueError`` quarantines the task instead of computing garbage.
    """
    job_from_payload(payload)
    return evaluate_point(payload)
