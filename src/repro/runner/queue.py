"""Multi-host work queues with lease-based fault tolerance.

Two queue implementations share one contract (:class:`TaskQueue`):
:class:`WorkQueue` here — directory-backed, for hosts that share a
filesystem — and
:class:`~repro.runner.transport.client.RemoteWorkQueue`, which speaks
the same contract to an HTTP coordinator (itself a :class:`WorkQueue`
served over REST) for hosts that share nothing but a network.  The
worker loop (:func:`drain`), the heartbeat machinery and the
:class:`~repro.runner.backends.queue.QueueBackend` submitter are all
written against the contract, so lease expiry, poison-task quarantine
and crash recovery behave identically over a mount and over a socket.

Any number of workers on any number of hosts that share one filesystem
(NFS, a bind mount, plain local disk) drain a single queue directory:

- ``<root>/pending/<task_id>.json`` — a submitted, unclaimed task.  The
  file body is the task's JSON payload; ``task_id`` is the payload's
  content address (:func:`repro.runner.job.payload_key`), so duplicate
  submissions collapse onto one file and one evaluation.
- ``<root>/active/<task_id>.<nonce>.json`` — a claimed task.  Claiming
  is a single atomic ``os.replace`` of the pending file, so exactly one
  claimer wins a task no matter how many workers race for it.  The
  lease file's mtime is the worker's heartbeat: a lease older than
  ``lease_ttl`` seconds is considered dead and any scanner moves it
  back to ``pending/`` (again via ``os.replace``), so a crashed worker
  only ever *delays* its tasks, it cannot lose them.
- ``<root>/results/`` — a content-addressed
  :class:`~repro.runner.cache.ResultCache` where workers drop finished
  results under the task id.  Submitters detect completion by polling
  this cache, which also means a task that was re-queued *after* its
  (slow, not dead) worker finished is recognised as already done at the
  next claim and discarded instead of re-evaluated.
- ``<root>/failed/`` — quarantine for tasks whose evaluation *raised*
  (as opposed to the worker dying): re-queueing those would crash-loop
  every worker in the fleet, so they are moved aside (payload plus a
  ``.traceback`` sidecar) and the worker keeps draining.  Failure is
  sticky — evaluation here is deterministic, so retrying an identical
  payload is futile; submitters surface the recorded traceback instead
  of hanging, and a human retries by deleting the ``failed/`` entry.

Every transition is an atomic rename or an atomic cache write, so a
worker can die at any instant without corrupting the queue.  Hosts'
clocks only feed lease *expiry*; keep ``lease_ttl`` comfortably above
both the longest task and the worst expected clock skew.
"""

from __future__ import annotations

import abc
import json
import math
import os
import socket
import threading
import time
import traceback
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.runner.cache import ResultCache
from repro.runner.job import payload_key

#: Default queue root, relative to the working directory.
DEFAULT_QUEUE_DIR = ".repro_queue"

#: Default lease time-to-live in seconds.  Generous on purpose: expiry
#: exists to recover from *dead* workers, and a premature expiry merely
#: duplicates (deterministic, content-addressed) work.
DEFAULT_LEASE_TTL = 300.0


@dataclass(frozen=True)
class Task:
    """One claimed unit of work: evaluate ``payload``, store under ``task_id``.

    ``lease`` is the claim's owner nonce — the token that names this
    particular claim in every later :meth:`TaskQueue.extend` /
    ``complete`` / ``fail`` call (and, for the file queue, the middle
    component of the lease file's name).  ``lease_path`` is set only by
    the file-backed :class:`WorkQueue`; remote queues have no path.
    """

    task_id: str
    payload: Dict[str, object]
    lease: str = ""
    lease_path: Optional[Path] = field(default=None, compare=False)


class TaskQueue(abc.ABC):
    """The claim/lease/complete contract every work queue implements.

    Both :class:`WorkQueue` (shared filesystem) and the HTTP
    :class:`~repro.runner.transport.client.RemoteWorkQueue` satisfy this
    interface, which is what lets :func:`drain`, the heartbeat thread
    and :class:`~repro.runner.backends.queue.QueueBackend` run unchanged
    over either transport.  Implementations must guarantee:

    - **atomic claims** — exactly one caller wins any task, no matter
      how many claim concurrently (from threads, processes or hosts);
    - **idempotent completes** — completing a task whose lease is gone
      (expired, re-queued, already completed) is a harmless no-op;
    - **sticky failure** — a failed task is quarantined, not re-queued.

    Attributes every implementation exposes:
        lease_ttl: seconds before an unrefreshed lease is considered
            dead and its task re-queued.
        results: the content-addressed result store
            (:class:`~repro.runner.cache.ResultCache`-shaped: ``get`` /
            ``put`` / ``discard`` / ``discard_many``) where completed
            task outputs land.
    """

    lease_ttl: float
    results: object

    @abc.abstractmethod
    def submit(self, payload: Mapping[str, object]) -> str:
        """Enqueue ``payload`` (idempotent); returns its task id."""

    def submit_many(self, payloads: Sequence[Mapping[str, object]]) -> List[str]:
        """Enqueue every payload (idempotent); returns their task ids.

        The default is a :meth:`submit` loop — correct for any
        implementation.  Queues with per-operation latency (the HTTP
        :class:`~repro.runner.transport.client.RemoteWorkQueue`)
        override this with one batched round trip.
        """
        return [self.submit(payload) for payload in payloads]

    def poll_many(
        self, task_ids: Sequence[str]
    ) -> Dict[str, Dict[str, object]]:
        """One status snapshot per task id, for the submitter poll loop.

        Each entry answers everything a submitter tick asks about a
        task — ``{"result": payload-or-None, "failed": bool,
        "error": str, "lease_live": bool}`` — so one call replaces the
        per-task ``results.get`` + ``is_failed`` + ``has_live_lease``
        round trips.  ``failed``/``lease_live`` are only probed when
        there is no result yet: a finished task's other states are
        irrelevant to the poll loop.

        The default is a per-task loop; the HTTP client overrides it
        with a single ``batch/poll`` round trip.
        """
        snapshot: Dict[str, Dict[str, object]] = {}
        for task_id in task_ids:
            result = self.results.get(task_id)
            failed = False
            error = ""
            lease_live = False
            if result is None:
                failed = self.is_failed(task_id)
                if failed:
                    error = self.failed_error(task_id)
                else:
                    lease_live = self.has_live_lease(task_id)
            snapshot[task_id] = {
                "result": result,
                "failed": failed,
                "error": error,
                "lease_live": lease_live,
            }
        return snapshot

    @abc.abstractmethod
    def claim(self, worker: str = "") -> Optional[Task]:
        """Atomically claim one pending task, or ``None`` if none remain."""

    @abc.abstractmethod
    def extend(self, task: Task) -> None:
        """Heartbeat: push ``task``'s lease expiry ``lease_ttl`` ahead."""

    @abc.abstractmethod
    def complete(self, task: Task) -> None:
        """Release ``task``'s lease after its result reached :attr:`results`."""

    @abc.abstractmethod
    def fail(self, task: Task, error: str = "") -> None:
        """Quarantine ``task`` (sticky) instead of re-queueing it."""

    @abc.abstractmethod
    def is_failed(self, task_id: str) -> bool:
        """Whether ``task_id`` has been quarantined."""

    @abc.abstractmethod
    def failed_error(self, task_id: str) -> str:
        """The recorded traceback for a quarantined task ('' if none)."""

    @abc.abstractmethod
    def has_live_lease(self, task_id: str) -> bool:
        """Whether some worker currently holds an unexpired lease."""

    @abc.abstractmethod
    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Move every expired lease back to pending; returns how many."""

    @abc.abstractmethod
    def pending_count(self) -> int: ...

    @abc.abstractmethod
    def active_count(self) -> int: ...

    @abc.abstractmethod
    def failed_count(self) -> int: ...

    @property
    def location(self) -> str:
        """Where this queue lives, for log and error messages."""
        return repr(self)

    def active_owners(self) -> List[str]:
        """Owner ids (see :func:`lease_owner`) of the live leases."""
        return []

    def stats(self) -> Dict[str, object]:
        """One JSON-safe snapshot of queue health, attributable by owner."""
        return {
            "pending": self.pending_count(),
            "active": self.active_count(),
            "failed": self.failed_count(),
            "lease_ttl": self.lease_ttl,
            "owners": self.active_owners(),
        }

    @contextmanager
    def heartbeat(self, task: Task):
        """Keep ``task``'s lease fresh for the duration of the block.

        A daemon thread extends the lease every ``lease_ttl / 4``
        seconds (numpy releases the GIL in its kernels, so the beat
        runs even during a heavy evaluation), so a task may legally
        take much longer than the TTL: expiry then only ever fires for
        workers that actually died.

        The interval is re-read before every beat, not frozen at task
        start: a remote queue's ``lease_ttl`` refreshes when the
        coordinator is restarted with a different ``--lease-ttl``, and
        an in-flight task must adopt the new cadence (within one old
        interval) or its beats could land slower than the new expiry.
        """
        stop = threading.Event()

        def interval() -> float:
            try:
                return self.lease_ttl / 4
            except Exception:  # checks: allow-broad-except heartbeat falls back to the default cadence
                # Remote queues fetch the TTL from the coordinator,
                # which may be briefly unreachable; beat at the default
                # cadence rather than not at all.
                return DEFAULT_LEASE_TTL / 4

        def beat() -> None:
            while not stop.wait(interval()):
                try:
                    self.extend(task)
                except Exception:  # checks: allow-broad-except a failed beat must not kill the heartbeat
                    # A failed beat must never kill the heartbeat: the
                    # lease survives missed renewals for up to a full
                    # TTL, and the next beat may reach a restarted
                    # coordinator.  (WorkQueue.extend never raises;
                    # RemoteWorkQueue.extend can, after its retries.)
                    pass

        thread = threading.Thread(target=beat, daemon=True)
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join()


class WorkQueue(TaskQueue):
    """Directory-backed task queue shared by every host that mounts it."""

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_QUEUE_DIR,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ):
        # math.isfinite first: a NaN TTL passes `<= 0` (every NaN
        # comparison is False) and then silently breaks all lease
        # expiry math downstream.
        if not math.isfinite(lease_ttl) or lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be finite and positive, got {lease_ttl}")
        self.root = Path(root)
        self.lease_ttl = float(lease_ttl)
        self.pending_dir = self.root / "pending"
        self.active_dir = self.root / "active"
        self.failed_dir = self.root / "failed"
        #: Optional structured event sink (anything with an
        #: ``emit(kind, **fields)`` — see :class:`repro.obs.EventLog`).
        #: The coordinator attaches its log here so quarantines and
        #: lease expiries land in ``/api/v1/events``; standalone queues
        #: leave it ``None`` and pay nothing.
        self.events = None
        #: Where workers drop finished results (keyed by task id).  Kept
        #: inside the queue root so sharing the queue directory is all
        #: the coordination submitters and workers ever need.
        self.results = ResultCache(self.root / "results")

    # -- submission ---------------------------------------------------------

    def submit(self, payload: Mapping[str, object]) -> str:
        """Enqueue ``payload`` (idempotent); returns its task id.

        Already-finished tasks (result present), already-pending tasks
        and quarantined tasks (see :meth:`fail`) are not re-enqueued.
        A task that is currently *active* is re-enqueued only once its
        lease expires — re-submitting it here would race the live
        worker for no benefit.
        """
        task_id = payload_key(payload)
        if (
            task_id in self.results
            or self._is_active(task_id)
            or self.is_failed(task_id)
        ):
            return task_id
        path = self.pending_dir / f"{task_id}.json"
        if path.is_file():
            return task_id
        self.pending_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}")
        tmp.write_text(_dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
        if task_id in self.results or self._is_active(task_id):
            # A claimer (or a finishing worker) slipped in between the
            # existence checks above and our write, so the file we just
            # created is a duplicate of a task already in flight —
            # withdraw it.  Should a racer claim the duplicate first,
            # that claim is harmless (evaluation is deterministic and
            # results are content-addressed); this just avoids the
            # wasted work in the common interleaving.
            _unlink(path)
        return task_id

    # -- claiming -----------------------------------------------------------

    def claim(self, worker: str = "") -> Optional[Task]:
        """Atomically claim one pending task, or ``None`` if none remain.

        Also re-queues any expired leases first, so a single draining
        worker is enough to recover every dead worker's tasks.  Tasks
        whose result already exists are discarded, not returned.
        """
        self.requeue_expired()
        for path in sorted(self.pending_dir.glob("*.json")):
            task_id = path.stem
            nonce = _nonce(worker)
            lease = self.active_dir / f"{task_id}.{nonce}.json"
            self.active_dir.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(path, lease)
            except FileNotFoundError:
                continue  # lost the race for this task; try the next
            if task_id in self.results:
                _unlink(lease)  # finished by a slow worker after re-queue
                continue
            try:
                payload = _loads(lease.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                _unlink(lease)  # unreadable task file; drop it
                continue
            return Task(
                task_id=task_id,
                payload=payload,
                lease=nonce,
                lease_path=lease,
            )
        return None

    def task_for(self, task_id: str, lease: str) -> Task:
        """Rebind a claim by its ``(task_id, lease)`` coordinates.

        How the HTTP coordinator resolves extend/complete/fail requests:
        the remote worker only holds the lease nonce its claim returned,
        and this reconstructs the :class:`Task` (payload-free — none of
        the lease operations read it) that names the same lease file.
        """
        return Task(
            task_id=task_id,
            payload={},
            lease=lease,
            lease_path=self.active_dir / f"{task_id}.{lease}.json",
        )

    def extend(self, task: Task) -> None:
        """Heartbeat: push ``task``'s lease expiry ``lease_ttl`` into the future."""
        try:
            os.utime(task.lease_path)
        except FileNotFoundError:
            pass  # lease expired and was re-queued; nothing to extend

    def complete(self, task: Task) -> None:
        """Release ``task``'s lease after its result reached :attr:`results`."""
        _unlink(task.lease_path)

    def fail(self, task: Task, error: str = "") -> None:
        """Quarantine ``task`` under ``failed/`` instead of re-queueing.

        For tasks whose *evaluation raised* — a deterministic failure
        would take down every worker that re-claims it, so the task is
        moved aside (payload preserved for inspection, ``error`` in a
        ``.traceback`` sidecar for submitters to surface) and the fleet
        keeps draining.  A lease that was already expired and re-queued
        loses the race here harmlessly.
        """
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        if error:
            sidecar = self.failed_dir / f"{task.task_id}.traceback"
            sidecar.write_text(error, encoding="utf-8")
        try:
            os.replace(
                task.lease_path, self.failed_dir / task.lease_path.name
            )
        except FileNotFoundError:
            pass
        if self.events is not None:
            self.events.emit(
                "task_quarantined",
                task_id=task.task_id,
                owner=lease_owner(task.lease),
                error=error[:200],
            )

    def is_failed(self, task_id: str) -> bool:
        """Whether ``task_id`` has been quarantined under ``failed/``."""
        return any(self.failed_dir.glob(f"{task_id}.*.json"))

    def failed_error(self, task_id: str) -> str:
        """The recorded traceback for a quarantined task ('' if none)."""
        sidecar = self.failed_dir / f"{task_id}.traceback"
        try:
            return sidecar.read_text(encoding="utf-8")
        except OSError:
            return ""

    def has_live_lease(self, task_id: str) -> bool:
        """Whether some worker currently holds an unexpired lease on
        ``task_id`` — i.e. the task *appears* to be in good hands."""
        # checks: allow-wall-clock lease expiry compares cross-host file mtimes (epoch seconds)
        now = time.time()
        for lease in self.active_dir.glob(f"{task_id}.*.json"):
            try:
                if lease.stat().st_mtime + self.lease_ttl > now:
                    return True
            except FileNotFoundError:
                continue
        return False

    # -- fault recovery -----------------------------------------------------

    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Move every expired lease back to pending; returns how many."""
        if not self.active_dir.is_dir():
            return 0
        # checks: allow-wall-clock lease expiry compares cross-host file mtimes (epoch seconds)
        now = time.time() if now is None else now
        requeued = 0
        for lease in sorted(self.active_dir.glob("*.json")):
            try:
                expired = lease.stat().st_mtime + self.lease_ttl <= now
            except FileNotFoundError:
                continue  # completed (or re-queued) under us
            if not expired:
                continue
            task_id = lease.name.split(".", 1)[0]
            if task_id in self.results:
                _unlink(lease)  # the "dead" worker actually finished
                continue
            try:
                os.replace(lease, self.pending_dir / f"{task_id}.json")
            except FileNotFoundError:
                continue
            requeued += 1
            if self.events is not None:
                parts = lease.name.split(".")
                owner = lease_owner(parts[1]) if len(parts) >= 3 else ""
                self.events.emit(
                    "lease_expired",
                    task_id=task_id,
                    owner=owner,
                )
        return requeued

    # -- introspection ------------------------------------------------------

    def pending_count(self) -> int:
        return sum(1 for _ in self.pending_dir.glob("*.json"))

    def active_count(self) -> int:
        return sum(1 for _ in self.active_dir.glob("*.json"))

    def failed_count(self) -> int:
        return sum(1 for _ in self.failed_dir.glob("*.json"))

    @property
    def location(self) -> str:
        return str(self.root)

    def active_owners(self) -> List[str]:
        """Owners of the live leases, for attributable queue stats."""
        owners = set()
        for lease in self.active_dir.glob("*.json"):
            parts = lease.name.split(".")
            if len(parts) >= 3:
                owners.add(lease_owner(parts[1]))
        return sorted(owners)

    def stats(self) -> Dict[str, object]:
        stats = super().stats()
        stats["results"] = len(self.results)
        return stats

    def _is_active(self, task_id: str) -> bool:
        return any(self.active_dir.glob(f"{task_id}.*.json"))


def drain(
    queue: TaskQueue,
    handler: Callable[[Mapping[str, object]], Dict[str, object]],
    max_tasks: Optional[int] = None,
    idle_timeout: Optional[float] = None,
    poll_interval: float = 0.1,
    worker: str = "",
) -> int:
    """Worker loop: claim, evaluate, store, repeat; returns tasks completed.

    ``handler`` maps a task payload to its JSON-safe result payload
    (the ``repro worker`` CLI validates with
    :func:`repro.runner.job.job_from_payload` and evaluates with
    :func:`repro.runner.evaluate.evaluate_point`).  The loop exits after
    ``max_tasks`` completions, or once the queue has stayed empty for
    ``idle_timeout`` seconds (``None`` drains forever — the service
    mode for a long-lived worker host).

    The worker must outlive any single bad task: a handler exception
    quarantines that task under ``failed/`` (re-queueing a
    deterministically poisonous payload would crash-loop the whole
    fleet) and the loop moves on.  While a task runs, its lease is kept
    fresh by :meth:`WorkQueue.heartbeat`, so evaluations may take far
    longer than the lease TTL without being declared dead.
    """
    completed = 0
    idle_start = time.monotonic()
    while max_tasks is None or completed < max_tasks:
        task = queue.claim(worker)
        if task is None:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_start >= idle_timeout
            ):
                break
            time.sleep(poll_interval)
            continue
        try:
            with queue.heartbeat(task):
                output = handler(task.payload)
        except Exception:  # checks: allow-broad-except poison task is quarantined via queue.fail
            traceback.print_exc()
            queue.fail(task, error=traceback.format_exc())
            idle_start = time.monotonic()
            continue
        queue.results.put(task.task_id, output)
        queue.complete(task)
        completed += 1
        idle_start = time.monotonic()
    return completed


# -- helpers ----------------------------------------------------------------


def default_owner() -> str:
    """``<hostname>-<pid>``: who holds a lease, attributable across hosts."""
    return f"{_sanitize(socket.gethostname()) or 'host'}-{os.getpid()}"


def lease_owner(lease: str) -> str:
    """The owner id embedded in a lease nonce (strips the unique suffix)."""
    return lease.rsplit("-", 1)[0]


def _sanitize(text: str) -> str:
    return "".join(ch for ch in text if ch.isalnum() or ch in "-_")[:48]


def _nonce(worker: str) -> str:
    """A unique lease name that stays attributable: ``[tag-]host-pid-uuid``.

    The hostname and pid are always embedded — not just the caller's
    tag — so a lease (or a ``failed/`` record, which keeps the lease's
    file name) identifies *which process on which machine* held it,
    even across hosts whose workers were started identically.
    """
    tag = _sanitize(worker)
    owner = f"{tag}-{default_owner()}" if tag else default_owner()
    return f"{owner}-{uuid.uuid4().hex[:8]}"


def _unlink(path: Path) -> None:
    try:
        path.unlink()
    except FileNotFoundError:
        pass


def _dumps(payload: Mapping[str, object]) -> str:
    return json.dumps(payload, sort_keys=True)


def _loads(text: str) -> Dict[str, object]:
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("task payload must be a JSON object")
    return payload
