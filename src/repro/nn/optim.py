"""Optimizers operating on :class:`repro.nn.module.Parameter` lists."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter

Array = np.ndarray


class Optimizer:
    """Base optimizer: holds the parameter list and a gradient-clip norm."""

    def __init__(self, params: Iterable[Parameter], clip_norm: Optional[float] = None):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        self.clip_norm = clip_norm

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def _clip(self) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = math.sqrt(sum(float(np.sum(p.grad * p.grad)) for p in self.params))
        if self.clip_norm is not None and total > self.clip_norm and total > 0:
            scale = self.clip_norm / total
            for param in self.params:
                param.grad *= scale
        return total

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        clip_norm: Optional[float] = None,
    ):
        super().__init__(params, clip_norm=clip_norm)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        self._clip()
        for param, vel in zip(self.params, self._velocity):
            if self.momentum:
                vel *= self.momentum
                vel += param.grad
                param.value -= self.lr * vel
            else:
                param.value -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip_norm: Optional[float] = None,
    ):
        super().__init__(params, clip_norm=clip_norm)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        self._clip()
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad * param.grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
