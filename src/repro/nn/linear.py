"""Fully connected layer with manual backward pass."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.activations import Activation, identity
from repro.nn.initializers import xavier_uniform, zeros
from repro.nn.module import Module, Parameter

Array = np.ndarray


class Linear(Module):
    """Affine map ``y = act(x @ W.T + b)``.

    Weights use the ``(out_features, in_features)`` convention so a row of
    ``W`` is exactly one neuron's weight vector — the unit the paper's
    memoization scheme operates on.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Activation = identity,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.use_bias = bias
        self.weight = Parameter(xavier_uniform((out_features, in_features), rng))
        if bias:
            self.bias = Parameter(zeros((out_features,)))
        self._cache: Optional[tuple] = None

    def forward(self, x: Array) -> Array:
        """Forward over a batch; ``x`` has shape ``(..., in_features)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        pre = x @ self.weight.value.T
        if self.use_bias:
            pre = pre + self.bias.value
        out = self.activation(pre)
        self._cache = (x, out)
        return out

    __call__ = forward

    def backward(self, grad_out: Array) -> Array:
        """Backprop ``dL/dy`` to ``dL/dx``; accumulates parameter grads."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, out = self._cache
        grad_pre = grad_out * self.activation.grad_from_output(out)
        # Collapse all leading (batch/time) axes for the weight gradient.
        flat_x = x.reshape(-1, self.in_features)
        flat_g = grad_pre.reshape(-1, self.out_features)
        self.weight.grad += flat_g.T @ flat_x
        if self.use_bias:
            self.bias.grad += flat_g.sum(axis=0)
        return grad_pre @ self.weight.value
