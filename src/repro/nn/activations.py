"""Activation functions with forward and derivative evaluation.

Each activation is exposed as an :class:`Activation` instance carrying a
name, the forward map and the derivative expressed *in terms of the
forward output* (the convention used by the hand-written BPTT code in the
recurrent layers: ``dx = dy * act.grad_from_output(y)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

Array = np.ndarray


def _sigmoid_forward(x: Array) -> Array:
    # Numerically stable evaluation: exp() is only taken of non-positive
    # arguments so it can never overflow.  Branchless form — both halves
    # are evaluated everywhere and selected per element, which is far
    # cheaper than boolean fancy indexing on the hot inference path and
    # computes the same exp/divide per element (bitwise identical).
    ex = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + ex), ex / (1.0 + ex))


def _softmax_forward(x: Array) -> Array:
    shifted = x - np.max(x, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=-1, keepdims=True)


@dataclass(frozen=True)
class Activation:
    """A differentiable scalar activation.

    Attributes:
        name: Stable identifier (used in serialized configs).
        forward: Elementwise forward map.
        grad_from_output: Derivative computed from the *output* of the
            forward map, i.e. ``f'(x)`` expressed as ``g(f(x))``.
    """

    name: str
    forward: Callable[[Array], Array] = field(repr=False)
    grad_from_output: Callable[[Array], Array] = field(repr=False)

    def __call__(self, x: Array) -> Array:
        return self.forward(x)


sigmoid = Activation(
    name="sigmoid",
    forward=_sigmoid_forward,
    grad_from_output=lambda y: y * (1.0 - y),
)

tanh = Activation(
    name="tanh",
    forward=np.tanh,
    grad_from_output=lambda y: 1.0 - y * y,
)

relu = Activation(
    name="relu",
    forward=lambda x: np.maximum(x, 0.0),
    grad_from_output=lambda y: (y > 0.0).astype(np.float64),
)

identity = Activation(
    name="identity",
    forward=lambda x: np.asarray(x, dtype=np.float64),
    grad_from_output=lambda y: np.ones_like(y),
)

softmax = Activation(
    name="softmax",
    forward=_softmax_forward,
    # Note: the true softmax Jacobian is not elementwise; this shortcut is
    # only valid when fused with cross-entropy (see repro.nn.losses).  It
    # is provided so softmax can still be used as a plain forward map.
    grad_from_output=lambda y: y * (1.0 - y),
)

_REGISTRY = {a.name: a for a in (sigmoid, tanh, relu, identity, softmax)}


def get_activation(name: str) -> Activation:
    """Look up an activation by name.

    Raises:
        KeyError: if ``name`` is not a registered activation.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown activation {name!r}; known: {known}") from None
