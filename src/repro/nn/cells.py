"""The shared gated-cell contract and the ``MemoHook`` protocol.

Every recurrent cell in :mod:`repro.nn` computes, per timestep, one or
more *gate phases*: groups of gates that share the same ``(x, h)``
operand pair (an LSTM computes all four gates from ``(x_t, h_{t-1})`` in
one phase; a GRU computes ``z``/``r`` from ``(x_t, h_{t-1})`` and then
the candidate from ``(x_t, r_t * h_{t-1})``).  :class:`GatedCell` makes
that structure explicit:

- ``GATES`` — the cell's gate order, exported so memo buffers, reuse
  traces and stats never hard-code ``("i", "f", "g", "o")``;
- ``PHASES`` — the phase decomposition, each a :class:`GatePhase`;
- :meth:`GatedCell.phase_preacts` — all pre-activations of a phase as
  one contiguous ``(B, G*H)`` matrix (gate blocks in ``GATES`` order);
- ``step_hooked`` (implemented per cell) — a timestep that offers each
  phase's pre-activation matrix to a single :class:`MemoHook` before
  applying biases and activations.

``MemoHook`` replaces the old per-gate ``gate_preacts`` callback dicts:
the memoization engine sees whole batched gate matrices, decides reuse
for every gate and neuron at once, and hands back the (possibly
substituted) matrix.  Cells stay memoization-agnostic and the engine
stays cell-agnostic.

Bitwise note: the per-gate full-precision GEMMs are *kept separate*
inside :meth:`phase_preacts` (written into block views of the stacked
buffer).  Fusing them into a single GEMM over vertically stacked weights
is **not** bitwise-stable for inner dimensions >= ~48 (BLAS may change
its reduction blocking with the output shape), and bitwise determinism
is the house invariant.  :meth:`stacked_gate_weights` therefore exists
for the *predictor* side only (BNN sign mirrors, operand-similarity),
where arithmetic is exact (integer popcounts / elementwise ops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Protocol, Tuple

import numpy as np

from repro.nn.module import Module

Array = np.ndarray


@dataclass(frozen=True)
class GatePhase:
    """One group of gates sharing an ``(x, h)`` operand pair.

    Attributes:
        index: position of this phase within the cell's ``PHASES`` (also
            the index of the engine's per-phase predictor/memo table).
        gates: gate names evaluated in this phase, in block order.
        recurrent: human-readable description of the recurrent operand
            (``"h_prev"`` or ``"reset_h"``) — documentation only; the
            actual operand is whatever ``step_hooked`` passes to the hook.
    """

    index: int
    gates: Tuple[str, ...]
    recurrent: str = "h_prev"


class MemoHook(Protocol):
    """The memoization seam between cells and the engine.

    ``on_gates`` receives the whole batched pre-activation matrix of one
    gate phase — shape ``(B, G*H)`` with one ``H``-wide block per gate in
    ``phase.gates`` order — together with the operands that produced it.
    The hook decides reuse (producing a boolean mask of the same shape,
    which it records into its stats), substitutes memoized values where
    reuse applies, and returns the matrix to continue the timestep with.
    Returning ``preacts`` unchanged makes the hook a pure observer.
    """

    def on_gates(
        self,
        cell: "GatedCell",
        phase: GatePhase,
        x: Array,
        h: Array,
        preacts: Array,
    ) -> Array:
        ...


class GatedCell(Module):
    """Base class for recurrent cells built from named gates.

    Subclasses declare ``GATES``/``PHASES`` and store their parameters
    under the ``w_{gate}x`` / ``w_{gate}h`` / ``b_{gate}`` naming
    convention; this base then provides uniform weight access and the
    stacked pre-activation helper used by ``step_hooked``.
    """

    #: Gate evaluation order (block order of stacked buffers and traces).
    GATES: ClassVar[Tuple[str, ...]] = ()
    #: Phase decomposition; every gate appears in exactly one phase.
    PHASES: ClassVar[Tuple[GatePhase, ...]] = ()

    input_size: int
    hidden_size: int

    # -- weight access -------------------------------------------------------

    def gate_weights(self, gate: str) -> Tuple[Array, Array, Array]:
        """Return ``(W_x, W_h, b)`` for ``gate`` in ``GATES``."""
        if gate not in self.GATES:
            raise KeyError(
                f"unknown {type(self).__name__} gate {gate!r}"
            )
        return (
            getattr(self, f"w_{gate}x").value,
            getattr(self, f"w_{gate}h").value,
            getattr(self, f"b_{gate}").value,
        )

    @property
    def gate_names(self) -> Tuple[str, ...]:
        return self.GATES

    def stacked_gate_weights(self, gates: Tuple[str, ...]) -> Tuple[Array, Array]:
        """``(W_x, W_h)`` of the given gates stacked along the neuron axis.

        Used to build phase-level predictors (one BNN mirror / operand
        tracker covering every gate of the phase).  Not used for the
        full-precision GEMMs — see the module docstring's bitwise note.
        """
        weights = [self.gate_weights(gate) for gate in gates]
        w_x = np.concatenate([w[0] for w in weights], axis=0)
        w_h = np.concatenate([w[1] for w in weights], axis=0)
        return w_x, w_h

    def stacked_bias(self, gates: Tuple[str, ...]) -> Array:
        """Biases of the given gates concatenated in block order."""
        return np.concatenate([self.gate_weights(gate)[2] for gate in gates])

    # -- pre-activations -----------------------------------------------------

    def phase_preacts(
        self,
        gates: Tuple[str, ...],
        x: Array,
        h: Array,
        out: Optional[Array] = None,
    ) -> Array:
        """All ``W_x x + W_h h`` products of a phase as one ``(B, G*H)``.

        Each gate's GEMM pair runs separately and is summed directly into
        its block view of the output buffer (``np.add(..., out=view)`` is
        elementwise, so the block contents are bitwise identical to the
        legacy per-gate ``x @ W_x.T + h @ W_h.T``).
        """
        batch = x.shape[0]
        hidden = self.hidden_size
        if out is None:
            out = np.empty((batch, hidden * len(gates)))
        scratch = getattr(self, "_gemm_scratch", None)
        if scratch is None or scratch[0].shape[0] != batch:
            scratch = (np.empty((batch, hidden)), np.empty((batch, hidden)))
            self._gemm_scratch = scratch
        xw, hw = scratch
        for i, gate in enumerate(gates):
            w_x, w_h, _ = self.gate_weights(gate)
            view = out[:, i * hidden : (i + 1) * hidden]
            np.matmul(x, w_x.T, out=xw)
            np.matmul(h, w_h.T, out=hw)
            np.add(xw, hw, out=view)
        return out

    # -- stepping ------------------------------------------------------------

    def step_hooked(self, x: Array, state, hook: Optional[MemoHook] = None):
        """One inference timestep with an optional memoization hook.

        Returns ``(h_t, new_state)`` with the layer's state convention.
        Implemented by each cell; with ``hook=None`` the result is
        bitwise identical to the legacy dict-based ``step``.
        """
        raise NotImplementedError
