"""Base class for parameterised layers.

``Module`` keeps an ordered registry of named :class:`Parameter` objects
(value + gradient accumulator) and of child modules, giving the optimizer
and the serializer a uniform view of any model tree.  There is no
autograd: each concrete layer implements its own ``forward``/``backward``
pair and accumulates into ``Parameter.grad``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

Array = np.ndarray


class Parameter:
    """A trainable tensor with a gradient accumulator."""

    __slots__ = ("value", "grad")

    def __init__(self, value: Array):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; assignment registers them automatically, preserving
    definition order (which fixes the parameter ordering seen by
    optimizers and state serialization).
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_children", {})

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._children[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the whole subtree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def children(self) -> Iterator["Module"]:
        yield from self._children.values()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the subtree."""
        return sum(p.value.size for p in self.parameters())

    # -- state (de)serialization -------------------------------------------

    def state_dict(self) -> Dict[str, Array]:
        """Copy of every parameter value, keyed by dotted name."""
        return {name: param.value.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Load values saved by :meth:`state_dict`.

        Raises:
            KeyError: if ``state`` is missing a parameter.
            ValueError: if a shape does not match.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        if missing:
            raise KeyError(f"state dict missing parameters: {missing}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.value.shape}, got {value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(params={self.num_parameters()})"
