"""Base class for parameterised layers.

``Module`` keeps an ordered registry of named :class:`Parameter` objects
(value + gradient accumulator) and of child modules, giving the optimizer
and the serializer a uniform view of any model tree.  There is no
autograd: each concrete layer implements its own ``forward``/``backward``
pair and accumulates into ``Parameter.grad``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

Array = np.ndarray


class Parameter:
    """A trainable tensor with a gradient accumulator."""

    __slots__ = ("value", "grad")

    def __init__(self, value: Array):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; assignment registers them automatically, preserving
    definition order (which fixes the parameter ordering seen by
    optimizers and state serialization).
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_children", {})

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._children[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the whole subtree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._children.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def children(self) -> Iterator["Module"]:
        yield from self._children.values()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the subtree."""
        return sum(p.value.size for p in self.parameters())

    # -- state (de)serialization -------------------------------------------

    def state_dict(self) -> Dict[str, Array]:
        """Copy of every parameter value, keyed by dotted name."""
        return {name: param.value.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, Array]) -> None:
        """Load values saved by :meth:`state_dict`.

        Raises:
            KeyError: if ``state`` is missing a parameter.
            ValueError: if a shape does not match.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        if missing:
            raise KeyError(f"state dict missing parameters: {missing}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.value.shape}, got {value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(params={self.num_parameters()})"


def clone_with_shared_parameters(
    module: Module, _memo: Optional[Dict[int, Module]] = None
) -> Module:
    """Structural copy of a module tree that *shares* every Parameter.

    The clone is a new object graph — fresh instances for ``module`` and
    each descendant module, with their own attribute dicts and registry
    order — but every :class:`Parameter` is the *same object* as in the
    source, so the clone computes with (and trains into) the original
    weights.  Non-module attributes (sizes, activation objects, cached
    activations) are shared by reference; code that reassigns them, like
    the layers' backward caches, writes only to its own instance.

    This is the replica primitive behind concurrent serving: N clones of
    one trained model can each carry private mutable evaluation state
    (memo wrappers, predictor sequences) while all answering from one
    set of weights — a forward through a clone is bitwise identical to a
    forward through the source.

    Aliased submodules (one instance reachable through two attributes)
    stay aliased in the clone.
    """
    memo = _memo if _memo is not None else {}
    existing = memo.get(id(module))
    if existing is not None:
        return existing
    clone = object.__new__(type(module))
    object.__setattr__(clone, "_parameters", {})
    object.__setattr__(clone, "_children", {})
    memo[id(module)] = clone
    for name, value in vars(module).items():
        if name in ("_parameters", "_children"):
            continue
        if isinstance(value, Module):
            value = clone_with_shared_parameters(value, memo)
        setattr(clone, name, value)
    return clone
