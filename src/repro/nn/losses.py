"""Loss functions with fused softmax + cross-entropy gradients."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.activations import softmax

Array = np.ndarray


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy over the last axis, for integer targets.

    The fused formulation keeps the gradient numerically exact:
    ``d(pre)/dL = probs - onehot(target)``.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache: Optional[Tuple[Array, Array]] = None

    def forward(self, logits: Array, targets: Array) -> float:
        """Mean cross-entropy; ``logits`` (..., C), ``targets`` integer (...)."""
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        if logits.shape[:-1] != targets.shape:
            raise ValueError(
                f"targets shape {targets.shape} does not match logits "
                f"batch shape {logits.shape[:-1]}"
            )
        probs = softmax(logits)
        classes = logits.shape[-1]
        flat_probs = probs.reshape(-1, classes)
        flat_targets = targets.reshape(-1)
        picked = flat_probs[np.arange(flat_targets.size), flat_targets]
        nll = -np.log(np.clip(picked, 1e-12, None))
        if self.label_smoothing:
            smooth = -np.log(np.clip(flat_probs, 1e-12, None)).mean(axis=-1)
            nll = (1.0 - self.label_smoothing) * nll + self.label_smoothing * smooth
        self._cache = (probs, targets)
        return float(nll.mean())

    __call__ = forward

    def backward(self) -> Array:
        """Gradient w.r.t. the logits, averaged over all positions."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, targets = self._cache
        classes = probs.shape[-1]
        count = max(targets.size, 1)
        grad = probs.copy()
        flat = grad.reshape(-1, classes)
        idx = np.arange(targets.size)
        if self.label_smoothing:
            uniform = self.label_smoothing / classes
            flat[idx, targets.reshape(-1)] -= 1.0 - self.label_smoothing
            flat -= uniform
        else:
            flat[idx, targets.reshape(-1)] -= 1.0
        return grad / count


class SequenceCrossEntropy:
    """Per-timestep cross-entropy with an optional padding mask.

    Logits have shape ``(B, T, C)`` and targets ``(B, T)``; masked
    positions (``mask == 0``) contribute neither loss nor gradient.
    """

    def __init__(self):
        self._cache: Optional[Tuple[Array, Array, Array]] = None

    def forward(self, logits: Array, targets: Array, mask: Optional[Array] = None) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        if logits.ndim != 3 or targets.ndim != 2:
            raise ValueError("expected logits (B, T, C) and targets (B, T)")
        if mask is None:
            mask = np.ones(targets.shape, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != targets.shape:
            raise ValueError("mask shape must match targets")
        probs = softmax(logits)
        batch, steps, classes = logits.shape
        flat_probs = probs.reshape(-1, classes)
        flat_targets = targets.reshape(-1)
        picked = flat_probs[np.arange(flat_targets.size), flat_targets]
        nll = -np.log(np.clip(picked, 1e-12, None)) * mask.reshape(-1)
        total = mask.sum()
        if total <= 0:
            raise ValueError("mask must select at least one position")
        self._cache = (probs, targets, mask)
        return float(nll.sum() / total)

    __call__ = forward

    def backward(self) -> Array:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, targets, mask = self._cache
        classes = probs.shape[-1]
        grad = probs.copy()
        flat = grad.reshape(-1, classes)
        idx = np.arange(targets.size)
        flat[idx, targets.reshape(-1)] -= 1.0
        grad *= mask[..., None]
        return grad / mask.sum()


def masked_sequence_loss(
    logits: Array, targets: Array, mask: Optional[Array] = None
) -> Tuple[float, Array]:
    """Convenience one-shot: returns ``(loss, grad_wrt_logits)``."""
    loss_fn = SequenceCrossEntropy()
    loss = loss_fn(logits, targets, mask)
    return loss, loss_fn.backward()
