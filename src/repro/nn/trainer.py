"""Generic mini-batch training loop.

Models expose ``compute_loss(batch) -> float`` which runs forward and
backward (accumulating parameter gradients); the trainer owns the
zero-grad / step cycle, epoch bookkeeping and optional evaluation hooks.
This keeps each benchmark model free to define its own batch structure
(token ids, frames, encoder/decoder pairs, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Protocol, Sequence

from repro.nn.optim import Optimizer


class TrainableModel(Protocol):
    """Anything the trainer can optimize."""

    def compute_loss(self, batch: object) -> float:
        """Run forward + backward on ``batch``; return the scalar loss."""

    def zero_grad(self) -> None: ...


@dataclass
class TrainingLog:
    """Per-epoch record of losses and optional evaluation metrics."""

    epoch_losses: List[float] = field(default_factory=list)
    eval_metrics: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def improved(self) -> bool:
        """True when the last epoch's loss beats the first epoch's."""
        return len(self.epoch_losses) >= 2 and (
            self.epoch_losses[-1] < self.epoch_losses[0]
        )


class Trainer:
    """Runs epochs of mini-batch optimisation over a batch provider.

    Args:
        model: the trainable model.
        optimizer: optimizer already bound to the model's parameters.
        eval_fn: optional metric callback run after each epoch (e.g.
            validation accuracy); results land in the log.
    """

    def __init__(
        self,
        model: TrainableModel,
        optimizer: Optimizer,
        eval_fn: Optional[Callable[[], float]] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.eval_fn = eval_fn

    def run_epoch(self, batches: Iterable[object]) -> float:
        """One pass over ``batches``; returns the mean batch loss."""
        losses: List[float] = []
        for batch in batches:
            self.model.zero_grad()
            loss = self.model.compute_loss(batch)
            self.optimizer.step()
            losses.append(loss)
        if not losses:
            raise ValueError("epoch received no batches")
        return sum(losses) / len(losses)

    def fit(
        self,
        batch_provider: Callable[[int], Sequence[object]],
        epochs: int,
    ) -> TrainingLog:
        """Train for ``epochs`` passes.

        Args:
            batch_provider: called with the epoch index, returns that
                epoch's batches (allowing reshuffling per epoch).
            epochs: number of passes.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        log = TrainingLog()
        for epoch in range(epochs):
            mean_loss = self.run_epoch(batch_provider(epoch))
            log.epoch_losses.append(mean_loss)
            if self.eval_fn is not None:
                log.eval_metrics.append(float(self.eval_fn()))
        return log
