"""GRU cell and sequence layer (paper Figure 3; Cho et al. 2014).

Like :class:`repro.nn.lstm.LSTMCell`, the GRU exposes per-gate weights and
a pre-activation hook so the memoization engine can substitute cached dot
products.  The candidate gate's recurrent operand is ``r_t * h_{t-1}``,
which is why ``gate_preacts`` is split in two stages (``z``/``r`` first,
then ``g`` once the reset gate is known).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.activations import sigmoid, tanh
from repro.nn.initializers import orthogonal, xavier_uniform, zeros
from repro.nn.module import Module, Parameter

Array = np.ndarray

#: Gate evaluation order: update, reset, candidate.
GRU_GATES: Tuple[str, ...] = ("z", "r", "g")


class GRUCell(Module):
    """A single GRU cell::

        z_t = sigmoid(W_zx x_t + W_zh h_{t-1} + b_z)
        r_t = sigmoid(W_rx x_t + W_rh h_{t-1} + b_r)
        g_t = tanh   (W_gx x_t + W_gh (r_t * h_{t-1}) + b_g)
        h_t = (1 - z_t) * h_{t-1} + z_t * g_t
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        for gate in GRU_GATES:
            setattr(
                self,
                f"w_{gate}x",
                Parameter(xavier_uniform((hidden_size, input_size), rng)),
            )
            setattr(
                self,
                f"w_{gate}h",
                Parameter(orthogonal((hidden_size, hidden_size), rng)),
            )
            setattr(self, f"b_{gate}", Parameter(zeros((hidden_size,))))

    # -- weight access -------------------------------------------------------

    def gate_weights(self, gate: str) -> Tuple[Array, Array, Array]:
        """Return ``(W_x, W_h, b)`` for ``gate`` in ``{'z','r','g'}``."""
        if gate not in GRU_GATES:
            raise KeyError(f"unknown GRU gate {gate!r}")
        return (
            getattr(self, f"w_{gate}x").value,
            getattr(self, f"w_{gate}h").value,
            getattr(self, f"b_{gate}").value,
        )

    @property
    def gate_names(self) -> Tuple[str, ...]:
        return GRU_GATES

    # -- forward -------------------------------------------------------------

    def zr_preacts(self, x: Array, h_prev: Array) -> Dict[str, Array]:
        """Matmul pre-activations for the update and reset gates."""
        pre = {}
        for gate in ("z", "r"):
            w_x, w_h, _ = self.gate_weights(gate)
            pre[gate] = x @ w_x.T + h_prev @ w_h.T
        return pre

    def g_preact(self, x: Array, reset_h: Array) -> Array:
        """Matmul pre-activation for the candidate gate.

        ``reset_h`` is the already-gated recurrent operand ``r_t * h_{t-1}``.
        """
        w_x, w_h, _ = self.gate_weights("g")
        return x @ w_x.T + reset_h @ w_h.T

    def step(
        self,
        x: Array,
        h_prev: Array,
        preacts: Optional[Dict[str, Array]] = None,
    ) -> Tuple[Array, dict]:
        """One timestep; ``preacts`` may substitute any of the three gates."""
        preacts = dict(preacts) if preacts else {}
        if "z" not in preacts or "r" not in preacts:
            preacts.update(
                {k: v for k, v in self.zr_preacts(x, h_prev).items() if k not in preacts}
            )
        z = sigmoid(preacts["z"] + self.b_z.value)
        r = sigmoid(preacts["r"] + self.b_r.value)
        reset_h = r * h_prev
        if "g" not in preacts:
            preacts["g"] = self.g_preact(x, reset_h)
        g = tanh(preacts["g"] + self.b_g.value)
        h = (1.0 - z) * h_prev + z * g
        cache = {
            "x": x,
            "h_prev": h_prev,
            "z": z,
            "r": r,
            "g": g,
            "reset_h": reset_h,
        }
        return h, cache

    def backward_step(self, d_h: Array, cache: dict) -> Tuple[Array, Array]:
        """Backward through one timestep -> ``(d_x, d_h_prev)``."""
        x, h_prev = cache["x"], cache["h_prev"]
        z, r, g, reset_h = cache["z"], cache["r"], cache["g"], cache["reset_h"]

        d_z = d_h * (g - h_prev)
        d_g = d_h * z
        d_h_prev = d_h * (1.0 - z)

        d_az = d_z * z * (1.0 - z)
        d_ag = d_g * (1.0 - g * g)

        # Candidate gate: x path and the reset-gated recurrent path.
        self.w_gx.grad += d_ag.T @ x
        self.w_gh.grad += d_ag.T @ reset_h
        self.b_g.grad += d_ag.sum(axis=0)
        d_reset_h = d_ag @ self.w_gh.value
        d_x = d_ag @ self.w_gx.value

        d_r = d_reset_h * h_prev
        d_h_prev = d_h_prev + d_reset_h * r
        d_ar = d_r * r * (1.0 - r)

        for gate, d_a in (("z", d_az), ("r", d_ar)):
            w_x = getattr(self, f"w_{gate}x")
            w_h = getattr(self, f"w_{gate}h")
            b = getattr(self, f"b_{gate}")
            w_x.grad += d_a.T @ x
            w_h.grad += d_a.T @ h_prev
            b.grad += d_a.sum(axis=0)
            d_x += d_a @ w_x.value
            d_h_prev += d_a @ w_h.value
        return d_x, d_h_prev


class GRULayer(Module):
    """Runs a :class:`GRUCell` over a batch of sequences (B, T, E)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self._caches: List[dict] = []

    def forward(self, x: Array, h0: Optional[Array] = None) -> Array:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, E) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else np.zeros((batch, self.hidden_size))
        self._caches = []
        outputs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, cache = self.cell.step(x[:, t, :], h)
            self._caches.append(cache)
            outputs[:, t, :] = h
        return outputs

    __call__ = forward

    # -- stepping interface (inference-time) ---------------------------------

    def start_state(self, batch: int) -> Array:
        """Fresh hidden state for a new sequence."""
        return np.zeros((batch, self.hidden_size))

    def step(self, x_t: Array, state: Array) -> Tuple[Array, Array]:
        """One inference step; returns ``(h_t, new_state)``."""
        h, _ = self.cell.step(x_t, state)
        return h, h

    def backward(self, grad_out: Array) -> Array:
        if not self._caches:
            raise RuntimeError("backward called before forward")
        batch = grad_out.shape[0]
        steps = len(self._caches)
        d_h = np.zeros((batch, self.hidden_size))
        d_x = np.empty((batch, steps, self.input_size))
        for t in reversed(range(steps)):
            d_h_total = d_h + grad_out[:, t, :]
            d_x_t, d_h = self.cell.backward_step(d_h_total, self._caches[t])
            d_x[:, t, :] = d_x_t
        return d_x
