"""GRU cell and sequence layer (paper Figure 3; Cho et al. 2014).

Like :class:`repro.nn.lstm.LSTMCell`, the GRU is a
:class:`~repro.nn.cells.GatedCell`.  The candidate gate's recurrent
operand is ``r_t * h_{t-1}``, so the cell decomposes into *two* gate
phases: ``z``/``r`` over ``(x_t, h_{t-1})`` first, then ``g`` over
``(x_t, r_t * h_{t-1})`` once the reset gate is resolved.  The
:class:`~repro.nn.cells.MemoHook` sees one batched pre-activation matrix
per phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.activations import sigmoid, tanh
from repro.nn.cells import GatedCell, GatePhase, MemoHook
from repro.nn.initializers import orthogonal, xavier_uniform, zeros
from repro.nn.module import Module, Parameter

Array = np.ndarray

#: Gate evaluation order: update, reset, candidate.
GRU_GATES: Tuple[str, ...] = ("z", "r", "g")


class GRUCell(GatedCell):
    """A single GRU cell::

        z_t = sigmoid(W_zx x_t + W_zh h_{t-1} + b_z)
        r_t = sigmoid(W_rx x_t + W_rh h_{t-1} + b_r)
        g_t = tanh   (W_gx x_t + W_gh (r_t * h_{t-1}) + b_g)
        h_t = (1 - z_t) * h_{t-1} + z_t * g_t
    """

    GATES = GRU_GATES
    #: z/r share (x, h_prev); the candidate sees the reset-gated state.
    PHASES = (
        GatePhase(0, ("z", "r"), "h_prev"),
        GatePhase(1, ("g",), "reset_h"),
    )

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        for gate in GRU_GATES:
            setattr(
                self,
                f"w_{gate}x",
                Parameter(xavier_uniform((hidden_size, input_size), rng)),
            )
            setattr(
                self,
                f"w_{gate}h",
                Parameter(orthogonal((hidden_size, hidden_size), rng)),
            )
            setattr(self, f"b_{gate}", Parameter(zeros((hidden_size,))))

    # -- forward -------------------------------------------------------------

    def zr_preacts(self, x: Array, h_prev: Array) -> Dict[str, Array]:
        """Matmul pre-activations for the update and reset gates.

        Legacy dict view of phase 0 — the batched equivalent is
        :meth:`~repro.nn.cells.GatedCell.phase_preacts`.
        """
        pre = {}
        for gate in ("z", "r"):
            w_x, w_h, _ = self.gate_weights(gate)
            pre[gate] = x @ w_x.T + h_prev @ w_h.T
        return pre

    def g_preact(self, x: Array, reset_h: Array) -> Array:
        """Matmul pre-activation for the candidate gate.

        ``reset_h`` is the already-gated recurrent operand ``r_t * h_{t-1}``.
        """
        w_x, w_h, _ = self.gate_weights("g")
        return x @ w_x.T + reset_h @ w_h.T

    def step(
        self,
        x: Array,
        h_prev: Array,
        preacts: Optional[Dict[str, Array]] = None,
    ) -> Tuple[Array, dict]:
        """One timestep; ``preacts`` may substitute any of the three gates."""
        preacts = dict(preacts) if preacts else {}
        if "z" not in preacts or "r" not in preacts:
            preacts.update(
                {k: v for k, v in self.zr_preacts(x, h_prev).items() if k not in preacts}
            )
        z = sigmoid(preacts["z"] + self.b_z.value)
        r = sigmoid(preacts["r"] + self.b_r.value)
        reset_h = r * h_prev
        if "g" not in preacts:
            preacts["g"] = self.g_preact(x, reset_h)
        g = tanh(preacts["g"] + self.b_g.value)
        h = (1.0 - z) * h_prev + z * g
        cache = {
            "x": x,
            "h_prev": h_prev,
            "z": z,
            "r": r,
            "g": g,
            "reset_h": reset_h,
        }
        return h, cache

    def step_hooked(
        self,
        x: Array,
        state: Array,
        hook: Optional[MemoHook] = None,
    ) -> Tuple[Array, Array]:
        """One inference timestep over stacked pre-activation buffers.

        Phase 0 offers the ``(B, 2H)`` z/r matrix to ``hook``, the reset
        gate is resolved, then phase 1 offers the ``(B, H)`` candidate
        matrix (whose recurrent operand is ``r_t * h_{t-1}``).  Bitwise
        identical to the legacy dict path.
        """
        h_prev = state
        hidden = self.hidden_size
        pre_zr = self.phase_preacts(self.PHASES[0].gates, x, h_prev)
        if hook is not None:
            pre_zr = hook.on_gates(self, self.PHASES[0], x, h_prev, pre_zr)
        z = sigmoid(pre_zr[:, :hidden] + self.b_z.value)
        r = sigmoid(pre_zr[:, hidden:] + self.b_r.value)
        reset_h = r * h_prev
        pre_g = self.phase_preacts(self.PHASES[1].gates, x, reset_h)
        if hook is not None:
            pre_g = hook.on_gates(self, self.PHASES[1], x, reset_h, pre_g)
        g = tanh(pre_g + self.b_g.value)
        h = (1.0 - z) * h_prev + z * g
        return h, h

    def backward_step(self, d_h: Array, cache: dict) -> Tuple[Array, Array]:
        """Backward through one timestep -> ``(d_x, d_h_prev)``."""
        x, h_prev = cache["x"], cache["h_prev"]
        z, r, g, reset_h = cache["z"], cache["r"], cache["g"], cache["reset_h"]

        d_z = d_h * (g - h_prev)
        d_g = d_h * z
        d_h_prev = d_h * (1.0 - z)

        d_az = d_z * z * (1.0 - z)
        d_ag = d_g * (1.0 - g * g)

        # Candidate gate: x path and the reset-gated recurrent path.
        self.w_gx.grad += d_ag.T @ x
        self.w_gh.grad += d_ag.T @ reset_h
        self.b_g.grad += d_ag.sum(axis=0)
        d_reset_h = d_ag @ self.w_gh.value
        d_x = d_ag @ self.w_gx.value

        d_r = d_reset_h * h_prev
        d_h_prev = d_h_prev + d_reset_h * r
        d_ar = d_r * r * (1.0 - r)

        for gate, d_a in (("z", d_az), ("r", d_ar)):
            w_x = getattr(self, f"w_{gate}x")
            w_h = getattr(self, f"w_{gate}h")
            b = getattr(self, f"b_{gate}")
            w_x.grad += d_a.T @ x
            w_h.grad += d_a.T @ h_prev
            b.grad += d_a.sum(axis=0)
            d_x += d_a @ w_x.value
            d_h_prev += d_a @ w_h.value
        return d_x, d_h_prev


class GRULayer(Module):
    """Runs a :class:`GRUCell` over a batch of sequences (B, T, E)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self._caches: List[dict] = []

    def forward(self, x: Array, h0: Optional[Array] = None) -> Array:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, E) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else np.zeros((batch, self.hidden_size))
        self._caches = []
        outputs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, cache = self.cell.step(x[:, t, :], h)
            self._caches.append(cache)
            outputs[:, t, :] = h
        return outputs

    __call__ = forward

    # -- stepping interface (inference-time) ---------------------------------

    def start_state(self, batch: int) -> Array:
        """Fresh hidden state for a new sequence."""
        return np.zeros((batch, self.hidden_size))

    def step(
        self,
        x_t: Array,
        state: Array,
        hook: Optional[MemoHook] = None,
    ) -> Tuple[Array, Array]:
        """One inference step; returns ``(h_t, new_state)``.

        Routes through the cell's stacked-buffer path (bitwise identical
        to the legacy dict path); ``hook`` is the memoization seam.
        """
        return self.cell.step_hooked(x_t, state, hook=hook)

    def backward(self, grad_out: Array) -> Array:
        if not self._caches:
            raise RuntimeError("backward called before forward")
        batch = grad_out.shape[0]
        steps = len(self._caches)
        d_h = np.zeros((batch, self.hidden_size))
        d_x = np.empty((batch, steps, self.input_size))
        for t in reversed(range(steps)):
            d_h_total = d_h + grad_out[:, t, :]
            d_x_t, d_h = self.cell.backward_step(d_h_total, self._caches[t])
            d_x[:, t, :] = d_x_t
        return d_x
