"""Token embedding lookup with sparse gradient accumulation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter

Array = np.ndarray


class Embedding(Module):
    """Dense lookup table mapping integer ids to vectors."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
        scale: float = 0.1,
    ):
        super().__init__()
        if vocab_size <= 0 or dim <= 0:
            raise ValueError("vocab_size and dim must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = Parameter(
            rng.uniform(-scale, scale, size=(vocab_size, dim)).astype(np.float64)
        )
        self._cache: Optional[Array] = None

    def forward(self, ids: Array) -> Array:
        """Look up ``ids`` (any integer shape) -> ``ids.shape + (dim,)``."""
        ids = np.asarray(ids)
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"embedding ids must be integers, got {ids.dtype}")
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise IndexError(
                f"ids out of range [0, {self.vocab_size}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        self._cache = ids
        return self.weight.value[ids]

    __call__ = forward

    def backward(self, grad_out: Array) -> None:
        """Scatter-add gradients into the rows used in the last forward."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        ids = self._cache.reshape(-1)
        grads = np.asarray(grad_out, dtype=np.float64).reshape(-1, self.dim)
        np.add.at(self.weight.grad, ids, grads)
