"""From-scratch numpy neural-network substrate.

This subpackage provides everything the memoization study needs from a
deep-learning framework: parameterised layers (dense, embedding, LSTM and
GRU cells/layers, bidirectional and deep stacks), losses, optimizers and a
mini-batch BPTT training loop.  All forward passes mirror the equations in
the paper (Figure 4 for LSTM; Cho et al. for GRU) so the memoization engine
in :mod:`repro.core` can hook individual gate dot products.
"""

from repro.nn.activations import (
    Activation,
    identity,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.cells import GatedCell, GatePhase, MemoHook
from repro.nn.embedding import Embedding
from repro.nn.gru import GRUCell, GRULayer
from repro.nn.initializers import orthogonal, uniform, xavier_uniform, zeros
from repro.nn.linear import Linear
from repro.nn.losses import (
    SequenceCrossEntropy,
    SoftmaxCrossEntropy,
    masked_sequence_loss,
)
from repro.nn.lstm import LSTMCell, LSTMLayer
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.rnn import Bidirectional, RNNCell, RNNLayer, RNNStack
from repro.nn.serialization import load_state, save_state
from repro.nn.trainer import Trainer, TrainingLog

__all__ = [
    "Activation",
    "Adam",
    "Bidirectional",
    "Embedding",
    "GRUCell",
    "GRULayer",
    "GatePhase",
    "GatedCell",
    "LSTMCell",
    "LSTMLayer",
    "Linear",
    "MemoHook",
    "Module",
    "Optimizer",
    "Parameter",
    "RNNCell",
    "RNNLayer",
    "RNNStack",
    "SGD",
    "SequenceCrossEntropy",
    "SoftmaxCrossEntropy",
    "Trainer",
    "TrainingLog",
    "identity",
    "load_state",
    "save_state",
    "masked_sequence_loss",
    "orthogonal",
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
    "uniform",
    "xavier_uniform",
    "zeros",
]
