"""Deep and bidirectional RNN composition.

The paper's benchmark networks range from a single LSTM layer (IMDB) to a
10-layer bidirectional LSTM (EESEN); these wrappers compose the cell
layers from :mod:`repro.nn.lstm` / :mod:`repro.nn.gru` into those shapes
while keeping every underlying cell reachable for the memoization engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module

Array = np.ndarray
RecurrentLayer = Union[LSTMLayer, GRULayer]


class Bidirectional(Module):
    """Wraps two recurrent layers into a bidirectional layer.

    The forward layer processes ``x_1 .. x_N`` and the backward layer
    ``x_N .. x_1``; their hidden states are concatenated per timestep, so
    the output feature size is ``2 * hidden_size``.
    """

    def __init__(self, forward_layer: RecurrentLayer, backward_layer: RecurrentLayer):
        super().__init__()
        if forward_layer.hidden_size != backward_layer.hidden_size:
            raise ValueError("forward/backward hidden sizes must match")
        if forward_layer.input_size != backward_layer.input_size:
            raise ValueError("forward/backward input sizes must match")
        self.fwd = forward_layer
        self.bwd = backward_layer
        self.input_size = forward_layer.input_size
        self.hidden_size = forward_layer.hidden_size
        self.output_size = 2 * forward_layer.hidden_size

    @classmethod
    def lstm(
        cls,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
        peephole: bool = True,
    ) -> "Bidirectional":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls(
            LSTMLayer(input_size, hidden_size, rng=rng, peephole=peephole),
            LSTMLayer(input_size, hidden_size, rng=rng, peephole=peephole),
        )

    @classmethod
    def gru(
        cls,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Bidirectional":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls(
            GRULayer(input_size, hidden_size, rng=rng),
            GRULayer(input_size, hidden_size, rng=rng),
        )

    def forward(self, x: Array) -> Array:
        out_f = self.fwd(x)
        out_b = self.bwd(x[:, ::-1, :])[:, ::-1, :]
        return np.concatenate([out_f, out_b], axis=-1)

    __call__ = forward

    def backward(self, grad_out: Array) -> Array:
        hidden = self.hidden_size
        d_f = self.fwd.backward(grad_out[:, :, :hidden])
        d_b = self.bwd.backward(grad_out[:, ::-1, hidden:])[:, ::-1, :]
        return d_f + d_b


class RNNStack(Module):
    """A stack of recurrent layers applied in sequence (a "deep RNN")."""

    def __init__(self, layers: Sequence[Union[RecurrentLayer, Bidirectional]]):
        super().__init__()
        if not layers:
            raise ValueError("RNNStack needs at least one layer")
        self.num_layers = len(layers)
        for idx, layer in enumerate(layers):
            expected = getattr(layer, "input_size")
            if idx > 0:
                prev_out = _output_size(layers[idx - 1])
                if expected != prev_out:
                    raise ValueError(
                        f"layer {idx} expects input size {expected} but layer "
                        f"{idx - 1} produces {prev_out}"
                    )
            setattr(self, f"layer{idx}", layer)

    @property
    def layers(self) -> List[Union[RecurrentLayer, Bidirectional]]:
        return [getattr(self, f"layer{idx}") for idx in range(self.num_layers)]

    @property
    def output_size(self) -> int:
        return _output_size(self.layers[-1])

    def forward(self, x: Array) -> Array:
        out = x
        for layer in self.layers:
            out = layer(out)
        return out

    __call__ = forward

    def backward(self, grad_out: Array) -> Array:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


def _output_size(layer: Union[RecurrentLayer, Bidirectional]) -> int:
    return getattr(layer, "output_size", None) or layer.hidden_size
