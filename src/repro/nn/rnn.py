"""Vanilla (Elman) RNN cell plus deep and bidirectional composition.

The paper's benchmark networks range from a single LSTM layer (IMDB) to a
10-layer bidirectional LSTM (EESEN); these wrappers compose the cell
layers from :mod:`repro.nn.lstm` / :mod:`repro.nn.gru` /
:class:`RNNLayer` into those shapes while keeping every underlying cell
reachable for the memoization engine.

:class:`RNNCell` is the smallest :class:`~repro.nn.cells.GatedCell`: a
single tanh "gate" named ``h`` in one phase — useful both as a network
building block and as the minimal exercise of the ``MemoHook`` seam.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.activations import tanh
from repro.nn.cells import GatedCell, GatePhase, MemoHook
from repro.nn.gru import GRULayer
from repro.nn.initializers import orthogonal, xavier_uniform, zeros
from repro.nn.lstm import LSTMLayer
from repro.nn.module import Module, Parameter

Array = np.ndarray

#: The Elman cell has a single gate, named after its output.
RNN_GATES: Tuple[str, ...] = ("h",)


class RNNCell(GatedCell):
    """A single Elman RNN cell::

        h_t = tanh(W_hx x_t + W_hh h_{t-1} + b_h)
    """

    GATES = RNN_GATES
    PHASES = (GatePhase(0, RNN_GATES, "h_prev"),)

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_hx = Parameter(xavier_uniform((hidden_size, input_size), rng))
        self.w_hh = Parameter(orthogonal((hidden_size, hidden_size), rng))
        self.b_h = Parameter(zeros((hidden_size,)))

    # -- forward -------------------------------------------------------------

    def gate_preacts(self, x: Array, h_prev: Array) -> Dict[str, Array]:
        """Legacy dict view of the single gate's pre-activation."""
        return {"h": x @ self.w_hx.value.T + h_prev @ self.w_hh.value.T}

    def step(
        self,
        x: Array,
        h_prev: Array,
        preacts: Optional[Dict[str, Array]] = None,
    ) -> Tuple[Array, dict]:
        """One timestep; returns ``(h_t, cache)``."""
        if preacts is None:
            preacts = self.gate_preacts(x, h_prev)
        h = tanh(preacts["h"] + self.b_h.value)
        cache = {"x": x, "h_prev": h_prev, "h": h}
        return h, cache

    def step_hooked(
        self,
        x: Array,
        state: Array,
        hook: Optional[MemoHook] = None,
    ) -> Tuple[Array, Array]:
        """One inference timestep over the stacked (single-gate) buffer."""
        h_prev = state
        pre = self.phase_preacts(self.GATES, x, h_prev)
        if hook is not None:
            pre = hook.on_gates(self, self.PHASES[0], x, h_prev, pre)
        h = tanh(pre + self.b_h.value)
        return h, h

    def backward_step(self, d_h: Array, cache: dict) -> Tuple[Array, Array]:
        """Backward through one timestep -> ``(d_x, d_h_prev)``."""
        x, h_prev, h = cache["x"], cache["h_prev"], cache["h"]
        d_a = d_h * (1.0 - h * h)
        self.w_hx.grad += d_a.T @ x
        self.w_hh.grad += d_a.T @ h_prev
        self.b_h.grad += d_a.sum(axis=0)
        return d_a @ self.w_hx.value, d_a @ self.w_hh.value


class RNNLayer(Module):
    """Runs an :class:`RNNCell` over a batch of sequences (B, T, E)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.cell = RNNCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self._caches: List[dict] = []

    def forward(self, x: Array, h0: Optional[Array] = None) -> Array:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, E) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else np.zeros((batch, self.hidden_size))
        self._caches = []
        outputs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, cache = self.cell.step(x[:, t, :], h)
            self._caches.append(cache)
            outputs[:, t, :] = h
        return outputs

    __call__ = forward

    # -- stepping interface (inference-time) ---------------------------------

    def start_state(self, batch: int) -> Array:
        """Fresh hidden state for a new sequence."""
        return np.zeros((batch, self.hidden_size))

    def step(
        self,
        x_t: Array,
        state: Array,
        hook: Optional[MemoHook] = None,
    ) -> Tuple[Array, Array]:
        """One inference step; returns ``(h_t, new_state)``."""
        return self.cell.step_hooked(x_t, state, hook=hook)

    def backward(self, grad_out: Array) -> Array:
        if not self._caches:
            raise RuntimeError("backward called before forward")
        batch = grad_out.shape[0]
        steps = len(self._caches)
        d_h = np.zeros((batch, self.hidden_size))
        d_x = np.empty((batch, steps, self.input_size))
        for t in reversed(range(steps)):
            d_h_total = d_h + grad_out[:, t, :]
            d_x_t, d_h = self.cell.backward_step(d_h_total, self._caches[t])
            d_x[:, t, :] = d_x_t
        return d_x


RecurrentLayer = Union[LSTMLayer, GRULayer, RNNLayer]


class Bidirectional(Module):
    """Wraps two recurrent layers into a bidirectional layer.

    The forward layer processes ``x_1 .. x_N`` and the backward layer
    ``x_N .. x_1``; their hidden states are concatenated per timestep, so
    the output feature size is ``2 * hidden_size``.
    """

    def __init__(self, forward_layer: RecurrentLayer, backward_layer: RecurrentLayer):
        super().__init__()
        if forward_layer.hidden_size != backward_layer.hidden_size:
            raise ValueError("forward/backward hidden sizes must match")
        if forward_layer.input_size != backward_layer.input_size:
            raise ValueError("forward/backward input sizes must match")
        self.fwd = forward_layer
        self.bwd = backward_layer
        self.input_size = forward_layer.input_size
        self.hidden_size = forward_layer.hidden_size
        self.output_size = 2 * forward_layer.hidden_size

    @classmethod
    def lstm(
        cls,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
        peephole: bool = True,
    ) -> "Bidirectional":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls(
            LSTMLayer(input_size, hidden_size, rng=rng, peephole=peephole),
            LSTMLayer(input_size, hidden_size, rng=rng, peephole=peephole),
        )

    @classmethod
    def gru(
        cls,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Bidirectional":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls(
            GRULayer(input_size, hidden_size, rng=rng),
            GRULayer(input_size, hidden_size, rng=rng),
        )

    @classmethod
    def rnn(
        cls,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Bidirectional":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls(
            RNNLayer(input_size, hidden_size, rng=rng),
            RNNLayer(input_size, hidden_size, rng=rng),
        )

    def forward(self, x: Array) -> Array:
        out_f = self.fwd(x)
        out_b = self.bwd(x[:, ::-1, :])[:, ::-1, :]
        return np.concatenate([out_f, out_b], axis=-1)

    __call__ = forward

    def backward(self, grad_out: Array) -> Array:
        hidden = self.hidden_size
        d_f = self.fwd.backward(grad_out[:, :, :hidden])
        d_b = self.bwd.backward(grad_out[:, ::-1, hidden:])[:, ::-1, :]
        return d_f + d_b


class RNNStack(Module):
    """A stack of recurrent layers applied in sequence (a "deep RNN")."""

    def __init__(self, layers: Sequence[Union[RecurrentLayer, Bidirectional]]):
        super().__init__()
        if not layers:
            raise ValueError("RNNStack needs at least one layer")
        self.num_layers = len(layers)
        for idx, layer in enumerate(layers):
            expected = getattr(layer, "input_size")
            if idx > 0:
                prev_out = _output_size(layers[idx - 1])
                if expected != prev_out:
                    raise ValueError(
                        f"layer {idx} expects input size {expected} but layer "
                        f"{idx - 1} produces {prev_out}"
                    )
            setattr(self, f"layer{idx}", layer)

    @property
    def layers(self) -> List[Union[RecurrentLayer, Bidirectional]]:
        return [getattr(self, f"layer{idx}") for idx in range(self.num_layers)]

    @property
    def output_size(self) -> int:
        return _output_size(self.layers[-1])

    def forward(self, x: Array) -> Array:
        out = x
        for layer in self.layers:
            out = layer(out)
        return out

    __call__ = forward

    def backward(self, grad_out: Array) -> Array:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


def _output_size(layer: Union[RecurrentLayer, Bidirectional]) -> int:
    return getattr(layer, "output_size", None) or layer.hidden_size
