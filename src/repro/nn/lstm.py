"""Peephole LSTM cell and sequence layer (paper Figure 4, Equations 1-6).

The cell is a :class:`~repro.nn.cells.GatedCell`: it exposes its gate
order (``GATES``), a single-phase decomposition (``PHASES``) and a
``step_hooked`` timestep that offers the whole batched pre-activation
matrix to a :class:`~repro.nn.cells.MemoHook`, so :mod:`repro.core` can
intercept exactly the dot products the paper's memoization scheme skips:
for each gate, the expensive part of a neuron is
``W_x @ x_t + W_h @ h_{t-1}``; bias, peephole and activation are applied
afterwards by the (cheap) multi-functional unit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.activations import sigmoid, tanh
from repro.nn.cells import GatedCell, GatePhase, MemoHook
from repro.nn.initializers import orthogonal, xavier_uniform, zeros
from repro.nn.module import Module, Parameter

Array = np.ndarray

#: Gate evaluation order used everywhere (matmuls, memo buffers, traces).
LSTM_GATES: Tuple[str, ...] = ("i", "f", "g", "o")


class LSTMCell(GatedCell):
    """A single LSTM cell with optional peephole connections.

    Computations follow the paper exactly::

        i_t = sigmoid(W_ix x_t + W_ih h_{t-1} + p_i * c_{t-1} + b_i)
        f_t = sigmoid(W_fx x_t + W_fh h_{t-1} + p_f * c_{t-1} + b_f)
        g_t = tanh   (W_gx x_t + W_gh h_{t-1}               + b_g)
        c_t = f_t * c_{t-1} + i_t * g_t
        o_t = sigmoid(W_ox x_t + W_oh h_{t-1} + p_o * c_t   + b_o)
        h_t = o_t * tanh(c_t)
    """

    GATES = LSTM_GATES
    #: All four gates share the (x_t, h_{t-1}) operand: one phase.
    PHASES = (GatePhase(0, LSTM_GATES, "h_prev"),)

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
        peephole: bool = True,
        forget_bias: float = 1.0,
    ):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.peephole = peephole

        for gate in LSTM_GATES:
            setattr(
                self,
                f"w_{gate}x",
                Parameter(xavier_uniform((hidden_size, input_size), rng)),
            )
            setattr(
                self,
                f"w_{gate}h",
                Parameter(orthogonal((hidden_size, hidden_size), rng)),
            )
            setattr(self, f"b_{gate}", Parameter(zeros((hidden_size,))))
        # Bias the forget gate open so gradients flow early in training.
        self.b_f.value += forget_bias
        if peephole:
            for gate in ("i", "f", "o"):
                setattr(self, f"p_{gate}", Parameter(zeros((hidden_size,))))

    # -- forward -------------------------------------------------------------

    def gate_preacts(self, x: Array, h_prev: Array) -> Dict[str, Array]:
        """The four matmul results ``W_x x + W_h h`` (no bias/peephole).

        Legacy dict view of the single phase's pre-activations — the
        batched equivalent is :meth:`~repro.nn.cells.GatedCell.phase_preacts`,
        which :meth:`step_hooked` feeds to the :class:`MemoHook`.
        """
        pre = {}
        for gate in LSTM_GATES:
            w_x, w_h, _ = self.gate_weights(gate)
            pre[gate] = x @ w_x.T + h_prev @ w_h.T
        return pre

    def step(
        self,
        x: Array,
        h_prev: Array,
        c_prev: Array,
        preacts: Optional[Dict[str, Array]] = None,
    ) -> Tuple[Array, Array, dict]:
        """One timestep.  Shapes: ``x`` (B, E); ``h_prev``/``c_prev`` (B, H).

        Args:
            preacts: optional substitute for the gate matmul results — the
                legacy per-gate hook (the engine now uses ``step_hooked``).

        Returns:
            ``(h_t, c_t, cache)`` where ``cache`` holds everything the
            backward pass needs.
        """
        if preacts is None:
            preacts = self.gate_preacts(x, h_prev)
        return self._apply_gates(
            x,
            h_prev,
            c_prev,
            preacts["i"],
            preacts["f"],
            preacts["g"],
            preacts["o"],
        )

    def step_hooked(
        self,
        x: Array,
        state: Tuple[Array, Array],
        hook: Optional[MemoHook] = None,
    ) -> Tuple[Array, Tuple[Array, Array]]:
        """One inference timestep over the stacked pre-activation buffer.

        Computes every gate's GEMM pair into one contiguous ``(B, 4H)``
        matrix, offers it to ``hook`` (the memoization seam), then applies
        the identical gate math as :meth:`step` — bitwise equal to the
        legacy path with or without a hook that substitutes values the
        way the engine does.
        """
        h_prev, c_prev = state
        pre = self.phase_preacts(self.GATES, x, h_prev)
        if hook is not None:
            pre = hook.on_gates(self, self.PHASES[0], x, h_prev, pre)
        hidden = self.hidden_size
        h, c, _ = self._apply_gates(
            x,
            h_prev,
            c_prev,
            pre[:, :hidden],
            pre[:, hidden : 2 * hidden],
            pre[:, 2 * hidden : 3 * hidden],
            pre[:, 3 * hidden :],
        )
        return h, (h, c)

    def _apply_gates(
        self,
        x: Array,
        h_prev: Array,
        c_prev: Array,
        pre_i: Array,
        pre_f: Array,
        pre_g: Array,
        pre_o: Array,
    ) -> Tuple[Array, Array, dict]:
        """Bias/peephole/activation math shared by ``step``/``step_hooked``."""
        a_i = pre_i + self.b_i.value
        a_f = pre_f + self.b_f.value
        if self.peephole:
            a_i = a_i + self.p_i.value * c_prev
            a_f = a_f + self.p_f.value * c_prev
        i = sigmoid(a_i)
        f = sigmoid(a_f)
        g = tanh(pre_g + self.b_g.value)
        c = f * c_prev + i * g
        a_o = pre_o + self.b_o.value
        if self.peephole:
            a_o = a_o + self.p_o.value * c
        o = sigmoid(a_o)
        tanh_c = tanh(c)
        h = o * tanh_c
        cache = {
            "x": x,
            "h_prev": h_prev,
            "c_prev": c_prev,
            "i": i,
            "f": f,
            "g": g,
            "o": o,
            "c": c,
            "tanh_c": tanh_c,
        }
        return h, c, cache

    def backward_step(
        self, d_h: Array, d_c: Array, cache: dict
    ) -> Tuple[Array, Array, Array]:
        """Backward through one timestep.

        Args:
            d_h: gradient w.r.t. ``h_t`` (includes the recurrent carry).
            d_c: gradient w.r.t. ``c_t`` carried from timestep ``t+1``.
            cache: the cache produced by :meth:`step`.

        Returns:
            ``(d_x, d_h_prev, d_c_prev)``; parameter grads are accumulated.
        """
        x, h_prev, c_prev = cache["x"], cache["h_prev"], cache["c_prev"]
        i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
        c, tanh_c = cache["c"], cache["tanh_c"]

        d_o = d_h * tanh_c
        d_ao = d_o * o * (1.0 - o)
        d_c_total = d_h * o * (1.0 - tanh_c * tanh_c) + d_c
        if self.peephole:
            d_c_total = d_c_total + d_ao * self.p_o.value

        d_i = d_c_total * g
        d_f = d_c_total * c_prev
        d_g = d_c_total * i
        d_ai = d_i * i * (1.0 - i)
        d_af = d_f * f * (1.0 - f)
        d_ag = d_g * (1.0 - g * g)

        d_c_prev = d_c_total * f
        if self.peephole:
            d_c_prev = d_c_prev + d_ai * self.p_i.value + d_af * self.p_f.value
            self.p_i.grad += (d_ai * c_prev).sum(axis=0)
            self.p_f.grad += (d_af * c_prev).sum(axis=0)
            self.p_o.grad += (d_ao * c).sum(axis=0)

        d_x = np.zeros_like(x)
        d_h_prev = np.zeros_like(h_prev)
        for gate, d_a in zip(LSTM_GATES, (d_ai, d_af, d_ag, d_ao)):
            w_x = getattr(self, f"w_{gate}x")
            w_h = getattr(self, f"w_{gate}h")
            b = getattr(self, f"b_{gate}")
            w_x.grad += d_a.T @ x
            w_h.grad += d_a.T @ h_prev
            b.grad += d_a.sum(axis=0)
            d_x += d_a @ w_x.value
            d_h_prev += d_a @ w_h.value
        return d_x, d_h_prev, d_c_prev


class LSTMLayer(Module):
    """Runs an :class:`LSTMCell` over a batch of sequences (B, T, E)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: Optional[np.random.Generator] = None,
        peephole: bool = True,
    ):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng, peephole=peephole)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self._caches: List[dict] = []

    def forward(
        self,
        x: Array,
        h0: Optional[Array] = None,
        c0: Optional[Array] = None,
    ) -> Array:
        """Full-sequence forward; returns hidden states of shape (B, T, H)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, E) input, got shape {x.shape}")
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else np.zeros((batch, self.hidden_size))
        c = c0 if c0 is not None else np.zeros((batch, self.hidden_size))
        self._caches = []
        outputs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, c, cache = self.cell.step(x[:, t, :], h, c)
            self._caches.append(cache)
            outputs[:, t, :] = h
        return outputs

    __call__ = forward

    # -- stepping interface (inference-time, used by decoders and the
    # -- memoization engine; plain forward keeps its own loop for BPTT) ------

    def start_state(self, batch: int) -> Tuple[Array, Array]:
        """Fresh ``(h, c)`` state for a new sequence."""
        return (
            np.zeros((batch, self.hidden_size)),
            np.zeros((batch, self.hidden_size)),
        )

    def step(
        self,
        x_t: Array,
        state: Tuple[Array, Array],
        hook: Optional[MemoHook] = None,
    ) -> Tuple[Array, Tuple]:
        """One inference step; returns ``(h_t, new_state)``.

        Routes through the cell's stacked-buffer path (bitwise identical
        to the legacy per-gate dict path); ``hook`` is the memoization
        seam.
        """
        return self.cell.step_hooked(x_t, state, hook=hook)

    def backward(self, grad_out: Array) -> Array:
        """BPTT over the cached sequence; returns ``dL/dx`` (B, T, E)."""
        if not self._caches:
            raise RuntimeError("backward called before forward")
        batch = grad_out.shape[0]
        steps = len(self._caches)
        d_h = np.zeros((batch, self.hidden_size))
        d_c = np.zeros((batch, self.hidden_size))
        d_x = np.empty((batch, steps, self.input_size))
        for t in reversed(range(steps)):
            d_h_total = d_h + grad_out[:, t, :]
            d_x_t, d_h, d_c = self.cell.backward_step(d_h_total, d_c, self._caches[t])
            d_x[:, t, :] = d_x_t
        return d_x
