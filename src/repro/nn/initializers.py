"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is fully deterministic given a seed — a requirement for the
reproduction benches, which compare reuse statistics across runs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

Array = np.ndarray
Shape = Sequence[int]


def zeros(shape: Shape, rng: np.random.Generator | None = None) -> Array:
    """All-zeros tensor (biases)."""
    del rng  # deterministic regardless of the generator
    return np.zeros(shape, dtype=np.float64)


def uniform(
    shape: Shape,
    rng: np.random.Generator,
    low: float = -0.1,
    high: float = 0.1,
) -> Array:
    """Uniform initialization in ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(np.float64)


def xavier_uniform(shape: Shape, rng: np.random.Generator) -> Array:
    """Glorot/Xavier uniform initialization.

    Fan-in/fan-out are taken from the last two dimensions, matching the
    ``(out, in)`` weight-matrix convention used throughout ``repro.nn``.
    """
    if len(shape) < 2:
        fan_in = fan_out = int(shape[0])
    else:
        fan_out, fan_in = int(shape[-2]), int(shape[-1])
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def orthogonal(shape: Shape, rng: np.random.Generator, gain: float = 1.0) -> Array:
    """Orthogonal initialization (recommended for recurrent matrices).

    For non-square matrices the result has orthonormal rows or columns,
    whichever set is smaller.
    """
    if len(shape) != 2:
        raise ValueError(f"orthogonal init requires a 2-D shape, got {tuple(shape)}")
    rows, cols = int(shape[0]), int(shape[1])
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Sign correction so the distribution is uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).astype(np.float64)
