"""Save/load model parameters as ``.npz`` archives.

Trained benchmark models are small (tens of kB) but take seconds to
train; persisting them lets examples and notebooks skip retraining.
Dotted parameter names are the archive keys, so any module tree with the
same architecture round-trips.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, Path]


def save_state(module: Module, path: PathLike) -> None:
    """Write every parameter of ``module`` to an ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(path, **state)


def load_state(module: Module, path: PathLike) -> None:
    """Load parameters saved by :func:`save_state` into ``module``.

    Raises:
        FileNotFoundError: if the archive does not exist.
        KeyError / ValueError: on architecture mismatch (propagated from
            :meth:`Module.load_state_dict`).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved state at {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
