"""Quickstart: neuron-level fuzzy memoization on a small LSTM.

Builds a two-layer recurrent network, runs it over a smooth input
sequence, then re-runs it under the paper's BNN-based memoization scheme
and reports how many neuron evaluations were avoided and how far the
outputs drifted.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import MemoizationScheme, ReuseStats, memoized
from repro.nn import GRULayer, LSTMLayer, RNNStack


def main():
    rng = np.random.default_rng(0)
    model = RNNStack(
        [LSTMLayer(16, 32, rng=rng), GRULayer(32, 32, rng=rng)]
    )

    # A smooth input sequence — the regime RNNs actually see in speech
    # or video, and the source of the redundancy the paper exploits.
    batch, steps = 4, 60
    base = rng.standard_normal((batch, 1, 16))
    drift = np.cumsum(0.05 * rng.standard_normal((batch, steps, 16)), axis=1)
    inputs = base + drift

    reference = model(inputs)

    print("theta   predictor  reuse   max|err|  mean|err|")
    for predictor in ("oracle", "bnn"):
        for theta in (0.05, 0.2, 0.5):
            stats = ReuseStats()
            scheme = MemoizationScheme(theta=theta, predictor=predictor)
            with memoized(model, scheme, stats):
                outputs = model(inputs)
            err = np.abs(outputs - reference)
            print(
                f"{theta:<7} {predictor:<10} "
                f"{stats.reuse_percent():5.1f}%  "
                f"{err.max():8.4f}  {err.mean():9.5f}"
            )

    print(
        "\nHigher thresholds skip more neuron evaluations at the cost of\n"
        "slowly growing output drift; the BNN predictor approaches the\n"
        "oracle's reuse without ever computing the true outputs first."
    )


if __name__ == "__main__":
    main()
