"""What-if analysis on the E-PUR accelerator model alone.

No neural network needs to run for this one: the cycle/energy model
answers "if my network reused X% of neuron evaluations, what would
E-PUR+BM buy me?" for all four Table 1 geometries, and prints the area
story (§5: 64.6 -> 66.8 mm²).

Run:  python examples/accelerator_sim.py
"""

from repro.accel import DEFAULT_AREA_MODEL, ReuseTrace, compare
from repro.models import PAPER_NETWORKS


def main():
    print("Energy savings / speedup vs hypothetical reuse:")
    header = "network      " + "".join(f"   reuse={r:>3.0%}" for r in (0.1, 0.2, 0.3, 0.4, 0.5))
    print(header)
    for name, spec in PAPER_NETWORKS.items():
        cells = []
        for reuse in (0.1, 0.2, 0.3, 0.4, 0.5):
            c = compare(spec, ReuseTrace.uniform(reuse, spec.layers))
            cells.append(
                f"{c.energy_savings_percent:4.1f}%/{c.speedup:4.2f}x"
            )
        print(f"{name:<12} " + "  ".join(cells))

    print("\nEnergy breakdown at the paper's reuse (EESEN, 30.5%):")
    spec = PAPER_NETWORKS["eesen"]
    c = compare(spec, ReuseTrace.uniform(0.305, spec.layers))
    breakdown = c.breakdown_percent()
    for config in ("epur", "epur_bm"):
        parts = "  ".join(
            f"{k}={v:5.1f}%" for k, v in breakdown[config].items()
        )
        print(f"  {config:<8} {parts}")

    print("\nArea (28 nm):")
    for component, mm2 in DEFAULT_AREA_MODEL.breakdown().items():
        print(f"  {component:<22} {mm2:6.1f} mm^2")
    print(f"  {'E-PUR total':<22} {DEFAULT_AREA_MODEL.baseline_mm2:6.1f} mm^2")
    print(f"  {'E-PUR+BM total':<22} {DEFAULT_AREA_MODEL.memoized_mm2:6.1f} mm^2")
    print(
        f"  overhead: {100 * DEFAULT_AREA_MODEL.overhead_fraction:.1f}% "
        "(paper: ~4%)"
    )


if __name__ == "__main__":
    main()
