"""Machine translation under fuzzy memoization (MNMT-style seq2seq).

Trains the encoder-decoder benchmark, shows concrete translations with
and without memoization, and demonstrates the paper's finding that the
translation network is the least tolerant of the four: reuse helps until
the decoder's greedy feedback loop starts compounding errors.

Run:  python examples/machine_translation.py
"""

from repro.core import MemoizationScheme, ReuseStats, memoized
from repro.models import load_benchmark


def main():
    print("Training the MNMT stand-in (encoder-decoder LSTM)...")
    bench = load_benchmark("mnmt", scale="tiny")
    print(f"  base BLEU: {bench.base_quality:.2f}")

    dataset = bench.dataset
    sample = bench.test_idx[:5]
    sources = dataset.source[sample]
    references = dataset.references(sample)

    print("\nSample translations (theta=0.2, BNN predictor):")
    baseline = bench.model.translate(sources, max_len=dataset.length + 2)
    stats = ReuseStats()
    with memoized(bench.model, MemoizationScheme(theta=0.2), stats):
        memoized_out = bench.model.translate(sources, max_len=dataset.length + 2)
    for src, ref, base, memo in zip(sources, references, baseline, memoized_out):
        marker = "" if base == memo else "   <- changed"
        print(f"  src={[int(t) for t in src]}")
        print(f"    ref={list(ref)}  base={list(base)}  memo={list(memo)}{marker}")
    print(f"  reuse during decode: {stats.reuse_percent():.1f}%")

    print("\nBLEU loss vs threshold (note the steep degradation):")
    print("  theta  BLEU loss  reuse")
    for theta in (0.05, 0.15, 0.3, 0.5):
        result = bench.evaluate_memoized(MemoizationScheme(theta=theta))
        print(
            f"  {theta:<6} {result.quality_loss:8.2f}  "
            f"{result.reuse_percent:5.1f}%"
        )


if __name__ == "__main__":
    main()
