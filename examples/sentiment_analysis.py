"""Sentiment classification under fuzzy memoization (IMDB-style LSTM).

Trains the single-layer LSTM sentiment benchmark, then compares the
oracle and BNN predictors across thresholds, including the per-gate
reuse distribution — input, forget, candidate and output gates do not
memoize equally well.

Run:  python examples/sentiment_analysis.py
"""

from repro.core import MemoizationScheme
from repro.models import load_benchmark


def main():
    print("Training the IMDB stand-in (1-layer LSTM classifier)...")
    bench = load_benchmark("imdb", scale="tiny")
    print(f"  base accuracy: {bench.base_quality:.2f}%")

    print("\npredictor  theta  acc.loss  reuse")
    for predictor in ("oracle", "bnn"):
        for theta in (0.1, 0.3, 0.5):
            scheme = MemoizationScheme(theta=theta, predictor=predictor)
            result = bench.evaluate_memoized(scheme)
            print(
                f"{predictor:<10} {theta:<6} {result.quality_loss:7.2f}%  "
                f"{result.reuse_percent:5.1f}%"
            )

    print("\nPer-gate reuse at theta=0.3 (BNN predictor):")
    result = bench.evaluate_memoized(MemoizationScheme(theta=0.3))
    for gate, fraction in sorted(result.stats.by_gate().items()):
        print(f"  gate {gate}: {100 * fraction:5.1f}%")

    print(
        "\nClassification tolerates aggressive memoization: only the\n"
        "final hidden state matters, so per-step output drift rarely\n"
        "flips the decision."
    )


if __name__ == "__main__":
    main()
