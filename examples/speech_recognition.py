"""Speech recognition under fuzzy memoization (EESEN-style BiLSTM).

Trains the bidirectional-LSTM speech benchmark on the synthetic phoneme
corpus, sweeps the memoization threshold, and projects the best safe
operating point onto the E-PUR accelerator model — the full §3.2.1 + §5
pipeline for one network.

Run:  python examples/speech_recognition.py
"""

from repro.analysis import end_to_end, network_sweep
from repro.core import MemoizationScheme
from repro.models import load_benchmark


def main():
    print("Training the EESEN stand-in (bidirectional LSTM)...")
    # The "bench" scale takes ~15 s to train but its larger test corpus
    # makes WER far less noisy than the test-suite-sized "tiny" scale.
    bench = load_benchmark("eesen", scale="bench")
    print(f"  base WER: {bench.base_quality:.2f}")

    print("\nThreshold sweep (BNN predictor):")
    print("  theta   WER loss   reuse")
    sweep = network_sweep(
        bench, MemoizationScheme(), thetas=(0.0, 0.1, 0.2, 0.3, 0.5)
    )
    for point in sweep.points:
        print(
            f"  {point.theta:<7} {point.loss:8.2f}   {100 * point.reuse:5.1f}%"
        )

    print("\nEnd-to-end at a 1% WER-loss budget:")
    result = end_to_end(bench, loss_target=1.0)
    print(f"  calibrated theta : {result.theta}")
    print(f"  test WER loss    : {result.quality_loss:.2f}")
    print(f"  computation reuse: {result.reuse_percent:.1f}%")
    print(f"  E-PUR+BM energy savings: {result.energy_savings_percent:.1f}%")
    print(f"  E-PUR+BM speedup       : {result.speedup:.2f}x")


if __name__ == "__main__":
    main()
