"""Repo-root pytest conftest.

Registers the repro checks pytest plugin (the ``--lock-sanitizer``
flag) by importing its hook functions into this namespace.  The import
is done directly — rather than via ``pytest_plugins`` — so it works
regardless of when pytest applies the ``pythonpath`` ini setting.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.checks.pytest_plugin import (  # noqa: E402,F401
    pytest_addoption,
    pytest_configure,
    pytest_sessionfinish,
    pytest_unconfigure,
)
